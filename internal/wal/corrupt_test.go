package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// corruptFixture builds a log of n records and returns the directory,
// the records as appended, the segment path and its raw bytes, plus
// the frame boundary offsets (frames[i] is where record i+1 starts;
// the final entry is the file length).
func corruptFixture(t *testing.T, n int) (dir string, recs []Record, seg string, data []byte, frames []int) {
	t.Helper()
	dir = t.TempDir()
	log, _, _, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := Record{Op: OpInsert, Rel: "R", Rows: [][]string{{fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)}}}
		if _, err := log.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	seg = filepath.Join(dir, fmt.Sprintf("wal-%016x.log", 1))
	data, err = os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	var torn bool
	recs, _, torn, err = DecodeSegment(data)
	if err != nil || torn || len(recs) != n {
		t.Fatalf("fixture decode: %d records, torn=%v, err=%v", len(recs), torn, err)
	}
	off := 0
	for range recs {
		_, size, _, _ := readFrame(data[off:])
		off += size
		frames = append(frames, off)
	}
	return dir, recs, seg, data, frames
}

// reopenWith writes raw as the only segment of a fresh directory and
// opens it, returning whatever recovery produced.
func reopenWith(t *testing.T, raw []byte) ([]Record, error) {
	t.Helper()
	dir := t.TempDir()
	seg := filepath.Join(dir, fmt.Sprintf("wal-%016x.log", 1))
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	log, _, tail, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		return nil, err
	}
	log.Close()
	return tail, nil
}

// isPrefix reports whether got is a prefix of want, record for record.
func isPrefix(got, want []Record) bool {
	if len(got) > len(want) {
		return false
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			return false
		}
	}
	return true
}

// TestTruncationEveryOffset truncates the segment at every byte
// offset — modelling a crash at any point during any append — and
// requires recovery to yield exactly the records whose frames are
// fully contained in the prefix, never an error, never invented data.
func TestTruncationEveryOffset(t *testing.T) {
	_, recs, _, data, frames := corruptFixture(t, 5)
	for off := 0; off <= len(data); off++ {
		complete := 0
		for _, end := range frames {
			if end <= off {
				complete++
			}
		}
		got, err := reopenWith(t, data[:off])
		if err != nil {
			t.Fatalf("truncate at %d: loud error on a torn tail: %v", off, err)
		}
		if len(got) != complete || !isPrefix(got, recs) {
			t.Fatalf("truncate at %d: recovered %d records, want prefix of %d", off, len(got), complete)
		}
	}
}

// TestTornTailTruncatedAndAppendable checks recovery repairs the file
// in place: after a torn tail, the segment holds only the valid
// prefix and appending continues the sequence.
func TestTornTailTruncatedAndAppendable(t *testing.T) {
	_, recs, _, data, frames := corruptFixture(t, 3)
	dir := t.TempDir()
	seg := filepath.Join(dir, fmt.Sprintf("wal-%016x.log", 1))
	cut := frames[1] + 3 // mid-frame of record 3
	if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	log, _, tail, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || !isPrefix(tail, recs) {
		t.Fatalf("recovered %d records, want 2", len(tail))
	}
	if fi, err := os.Stat(seg); err != nil || fi.Size() != int64(frames[1]) {
		t.Fatalf("segment size %d after repair, want %d (err %v)", fi.Size(), frames[1], err)
	}
	seq, err := log.Append(Record{Op: OpInsert, Rel: "R", Rows: [][]string{{"x", "y"}}})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("append after repair got seq %d, want 3 (torn record's slot reused)", seq)
	}
	log.Close()
}

// TestBitFlipNeverSilentlyWrong flips every bit of the segment, one
// at a time, and requires recovery to either fail loudly or return a
// clean prefix of the original records — byte-for-byte equal, never
// altered, reordered or invented.
func TestBitFlipNeverSilentlyWrong(t *testing.T) {
	_, recs, _, data, _ := corruptFixture(t, 5)
	raw := make([]byte, len(data))
	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			copy(raw, data)
			raw[pos] ^= 1 << bit
			got, err := reopenWith(t, raw)
			if err != nil {
				continue // loud failure: acceptable
			}
			if !isPrefix(got, recs) {
				t.Fatalf("flip byte %d bit %d: recovery accepted non-prefix state: %+v", pos, bit, got)
			}
			if len(got) == len(recs) {
				t.Fatalf("flip byte %d bit %d: corruption went entirely undetected", pos, bit)
			}
		}
	}
}

// TestCorruptionBeforeIntactRecordsIsLoud pins the stricter half of
// the torn-vs-corrupt distinction: damage to a record that is
// *followed by intact data* cannot be a crash artifact (appends are
// sequential), so recovery must refuse rather than truncate away
// acknowledged records.
func TestCorruptionBeforeIntactRecordsIsLoud(t *testing.T) {
	_, _, _, data, frames := corruptFixture(t, 5)
	cases := []struct {
		name string
		pos  int
	}{
		{"payload of record 1", frames[0] - 2},
		{"crc of record 2", frames[0] + 5},
		{"payload of record 3", frames[2] - 2},
	}
	for _, tc := range cases {
		raw := append([]byte(nil), data...)
		raw[tc.pos] ^= 0x01
		if _, err := reopenWith(t, raw); err == nil {
			t.Errorf("%s: corruption before intact records recovered silently", tc.name)
		}
	}
}

// TestCorruptFinalRecordIsTorn is the counterpart: damage confined to
// the final record is indistinguishable from a torn append, so it is
// dropped and the prefix recovered.
func TestCorruptFinalRecordIsTorn(t *testing.T) {
	_, recs, _, data, _ := corruptFixture(t, 5)
	raw := append([]byte(nil), data...)
	raw[len(raw)-1] ^= 0x01 // payload tail of the final record
	got, err := reopenWith(t, raw)
	if err != nil {
		t.Fatalf("corrupt final record: %v", err)
	}
	if len(got) != len(recs)-1 || !isPrefix(got, recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs)-1)
	}
}

// TestCheckpointCorruptionAlwaysLoud flips every bit of a checkpoint
// file: a checkpoint is written atomically (tmp + rename), so damage
// is never a crash artifact and recovery must always refuse.
func TestCheckpointCorruptionAlwaysLoud(t *testing.T) {
	dir := t.TempDir()
	log, _, _, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := log.Append(Record{Op: OpInsert, Rel: "R", Rows: [][]string{{fmt.Sprint(i), "v"}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.WriteCheckpoint(&Checkpoint{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	log.Close()
	path := filepath.Join(dir, fmt.Sprintf("checkpoint-%016x.ckpt", 3))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(data); pos++ {
		raw := append([]byte(nil), data...)
		raw[pos] ^= 0x10
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if l, _, _, err := Open(dir, Options{Policy: SyncNever}); err == nil {
			l.Close()
			t.Fatalf("flip at %d: corrupt checkpoint recovered silently", pos)
		}
	}
	// Truncations of the checkpoint are equally fatal.
	for cut := 0; cut < len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if l, _, _, err := Open(dir, Options{Policy: SyncNever}); err == nil {
			l.Close()
			t.Fatalf("truncate at %d: short checkpoint recovered silently", cut)
		}
	}
}
