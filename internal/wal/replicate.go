package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ErrCompacted reports that the requested tail position has been
// subsumed by a checkpoint: the records are gone from the log and the
// reader must restart from a checkpoint image instead.
var ErrCompacted = errors.New("wal: position compacted into a checkpoint")

// Epoch returns the current replication epoch (≥ 1). See Record.Epoch.
func (l *Log) Epoch() uint64 { return l.epoch.Load() }

// AdvanceEpoch raises the replication epoch; e must exceed the current
// epoch. Subsequent Appends stamp the new epoch, fencing off replicas
// of the old history. The bump itself becomes durable with the next
// record or checkpoint.
func (l *Log) AdvanceEpoch(e uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cur := l.epoch.Load(); e <= cur {
		return fmt.Errorf("wal: epoch %d does not advance current epoch %d", e, cur)
	}
	l.epoch.Store(e)
	return nil
}

// AppendExact writes a replicated record at exactly rec.Seq, which
// must be the next sequence of this log — a follower persisting the
// primary's stream bit-for-bit. The record's epoch must not regress
// (fencing); the log adopts it. The record is in the OS when
// AppendExact returns; durability follows the log's sync policy.
func (l *Log) AppendExact(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if want := l.seq.Load() + 1; rec.Seq != want {
		return fmt.Errorf("wal: replicated record has seq %d, want %d", rec.Seq, want)
	}
	if rec.Epoch == 0 {
		rec.Epoch = 1
	}
	if cur := l.epoch.Load(); rec.Epoch < cur {
		return fmt.Errorf("wal: fenced: record epoch %d behind local epoch %d", rec.Epoch, cur)
	}
	frame, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(frame); err != nil {
		l.fail(err)
		return l.err
	}
	l.seq.Store(rec.Seq)
	l.epoch.Store(rec.Epoch)
	l.bytesSinceCkpt += int64(len(frame))
	l.notifyAppendLocked()
	return nil
}

// InstallCheckpoint seeds a pristine (never-written) log with a
// checkpoint image received from a primary: the follower's bootstrap.
// After it returns the log behaves exactly as if it had logged and
// checkpointed records 1..c.Seq itself.
func (l *Log) InstallCheckpoint(c *Checkpoint) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.seq.Load() != 0 || l.ckptSeq != 0 || l.bytesSinceCkpt != 0 {
		return fmt.Errorf("wal: InstallCheckpoint requires a pristine log (seq %d, checkpoint %d)", l.seq.Load(), l.ckptSeq)
	}
	if c.Seq == 0 {
		return fmt.Errorf("wal: cannot install a checkpoint at seq 0")
	}
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if err := l.installCheckpointLocked(c); err != nil {
		return err
	}
	l.seq.Store(c.Seq)
	if c.Epoch > l.epoch.Load() {
		l.epoch.Store(c.Epoch)
	}
	l.syncedSeq = c.Seq
	return nil
}

// LatestCheckpoint reads back the newest durable checkpoint, or nil if
// the log has never checkpointed. Safe to call while the log is live.
func (l *Log) LatestCheckpoint() (*Checkpoint, error) {
	for attempt := 0; ; attempt++ {
		l.mu.Lock()
		seq := l.ckptSeq
		l.mu.Unlock()
		if seq == 0 {
			return nil, nil
		}
		data, err := os.ReadFile(filepath.Join(l.dir, ckptName(seq)))
		if os.IsNotExist(err) && attempt < 3 {
			continue // a concurrent checkpoint replaced it; re-resolve
		}
		if err != nil {
			return nil, err
		}
		return decodeCheckpoint(data)
	}
}

// ReadFrom returns up to max records starting at exactly fromSeq, in
// sequence order, reading the segment files while the log stays live:
// a torn final frame (a concurrent append racing the read) simply
// bounds the result, never errors. It returns ErrCompacted when
// fromSeq is already subsumed by a checkpoint — the reader must
// restart from a checkpoint image — and an empty slice when fromSeq is
// beyond the head (nothing to read yet).
func (l *Log) ReadFrom(fromSeq uint64, max int) ([]Record, error) {
	if fromSeq == 0 {
		return nil, fmt.Errorf("wal: sequences start at 1")
	}
	if max <= 0 {
		max = 1 << 10
	}
	for attempt := 0; ; attempt++ {
		l.mu.Lock()
		err := l.err
		ckpt := l.ckptSeq
		head := l.seq.Load()
		l.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if fromSeq <= ckpt {
			return nil, ErrCompacted
		}
		if fromSeq > head {
			return nil, nil
		}
		recs, raced, err := l.readRange(fromSeq, head, max)
		if err != nil {
			return nil, err
		}
		if !raced {
			return recs, nil
		}
		if attempt >= 3 {
			// The checkpointer keeps outrunning us; the position is
			// effectively compacted.
			return nil, ErrCompacted
		}
	}
}

// readRange scans the segment files for records fromSeq..head. It
// reports raced=true when a concurrent checkpoint removed files out
// from under the scan (the caller re-resolves against the log state).
func (l *Log) readRange(fromSeq, head uint64, max int) (recs []Record, raced bool, err error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, false, err
	}
	var segStarts []uint64
	for _, e := range entries {
		if s, ok := parseSeqName(e.Name(), "wal-", ".log"); ok {
			segStarts = append(segStarts, s)
		}
	}
	sort.Slice(segStarts, func(i, j int) bool { return segStarts[i] < segStarts[j] })
	prev := uint64(0)
	for i, start := range segStarts {
		if i+1 < len(segStarts) && segStarts[i+1] <= fromSeq {
			continue // segment ends before fromSeq
		}
		data, err := os.ReadFile(filepath.Join(l.dir, segName(start)))
		if os.IsNotExist(err) {
			return nil, true, nil // checkpoint removed it mid-scan
		}
		if err != nil {
			return nil, false, err
		}
		segRecs, _, _, err := DecodeSegment(data)
		if err != nil {
			return nil, false, err
		}
		for _, r := range segRecs {
			if r.Seq < fromSeq || r.Seq > head {
				continue
			}
			if len(recs) == 0 {
				if r.Seq != fromSeq {
					return nil, true, nil // leading gap: compaction raced the scan
				}
			} else if r.Seq != prev+1 {
				return nil, false, fmt.Errorf("wal: gap in live read: seq %d after %d", r.Seq, prev)
			}
			recs = append(recs, r)
			prev = r.Seq
			if len(recs) == max {
				return recs, false, nil
			}
		}
	}
	if len(recs) == 0 {
		return nil, true, nil // fromSeq ≤ head but absent: the scan raced
	}
	return recs, false, nil
}

// WaitAppend blocks until the log's head sequence exceeds after, the
// context is done, or the log closes/fails. It is the long-poll
// primitive behind the replication stream: followers park here instead
// of polling the segment files.
func (l *Log) WaitAppend(ctx context.Context, after uint64) error {
	for {
		l.mu.Lock()
		switch {
		case l.err != nil:
			err := l.err
			l.mu.Unlock()
			return err
		case l.closed:
			l.mu.Unlock()
			return fmt.Errorf("wal: log is closed")
		case l.seq.Load() > after:
			l.mu.Unlock()
			return nil
		}
		ch := l.appendCh
		l.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Stats is a point-in-time observability snapshot of the log.
type Stats struct {
	Seq           uint64 // last assigned record sequence
	CheckpointSeq uint64 // sequence of the newest durable checkpoint
	Epoch         uint64 // current replication epoch
	Segments      int    // live segment files
	SegmentBytes  int64  // total bytes across live segments
	Policy        SyncPolicy
}

// Stats reports the log's current position, checkpoint coverage, epoch
// and on-disk footprint.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Seq:           l.seq.Load(),
		CheckpointSeq: l.ckptSeq,
		Epoch:         l.epoch.Load(),
		Policy:        l.opts.Policy,
	}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return st
	}
	for _, e := range entries {
		if _, ok := parseSeqName(e.Name(), "wal-", ".log"); !ok {
			continue
		}
		st.Segments++
		if fi, err := e.Info(); err == nil {
			st.SegmentBytes += fi.Size()
		}
	}
	return st
}
