// Package wal implements the durability layer of the engine: an
// append-only, CRC-framed write-ahead log of logical mutation batches
// plus periodic compacted checkpoints, with crash recovery that loads
// the latest valid checkpoint and replays the log tail.
//
// The log records the same mutation batches the facade's incremental
// delta path consumes — Insert / Delete / Prefer / AddFD / relation
// creation — with values in the relation/codec wire cell syntax, so a
// record is exactly a replayable facade mutation. Records are framed
// as
//
//	[4 bytes little-endian payload length][4 bytes CRC32-C of payload][payload]
//
// and tagged (inside the payload) with the post-apply write-version
// Seq, a monotone counter across the log's whole history. Recovery
// tolerates a torn final record (a crash mid-append) by truncating it;
// any other framing, CRC, continuity or decode failure is reported
// loudly — the log never silently replays wrong state.
//
// Durability policy is pluggable per log (SyncPolicy): fsync before
// acknowledging every batch (concurrent committers share one fsync —
// group commit), fsync on a bounded background interval, or never.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"prefcqa/internal/relation"
)

// Op identifies the mutation kind of a Record.
type Op string

// The record operations. They mirror the facade's mutation surface.
const (
	// OpCreate registers a relation: Rel names it, Attrs carry the
	// typed schema. Rows and IDs may carry a preloaded instance (all
	// tuples in ID order, IDs listing the tombstoned ones) — the
	// AddInstance path.
	OpCreate Op = "create"
	// OpFD declares a functional dependency FD (parser syntax) on Rel.
	OpFD Op = "fd"
	// OpInsert inserts Rows (wire cell syntax, one cell per attribute)
	// into Rel. Every row was fresh when logged: replaying it must
	// assign a new tuple ID.
	OpInsert Op = "insert"
	// OpDelete tombstones IDs in Rel. Every ID was live when logged.
	OpDelete Op = "delete"
	// OpPrefer records preference Pairs (winner, loser) on Rel. Every
	// pair was validated (both IDs live) and fresh when logged.
	OpPrefer Op = "prefer"
)

// Record is one logged mutation batch. Seq is the post-apply
// write-version: record n of the history carries Seq == n, starting
// at 1, with no gaps.
type Record struct {
	Seq uint64 `json:"seq"`
	// Epoch is the replication epoch the record was written under.
	// Epochs start at 1 and only advance on failover: promoting a
	// follower bumps the epoch, and every replica refuses records from
	// an older epoch — a resurrected primary cannot overwrite the
	// promoted history (fencing). Within one log epochs are
	// non-decreasing.
	Epoch uint64              `json:"epoch,omitempty"`
	Op    Op                  `json:"op"`
	Rel   string              `json:"rel,omitempty"`
	Attrs []relation.WireAttr `json:"attrs,omitempty"`
	Rows  [][]string          `json:"rows,omitempty"`
	IDs   []int               `json:"ids,omitempty"`
	Pairs [][2]int            `json:"pairs,omitempty"`
	FD    string              `json:"fd,omitempty"`
}

// CheckpointRelation is one relation's full writer-side state inside a
// checkpoint: every tuple in ID order (tombstoned ones included, so
// the TupleID universe — which tail records address — survives), the
// tombstoned IDs, the declared dependencies (parser syntax) and the
// recorded preference pairs.
type CheckpointRelation struct {
	Name  string              `json:"name"`
	Attrs []relation.WireAttr `json:"attrs"`
	Rows  [][]string          `json:"rows"`
	Dead  []int               `json:"dead,omitempty"`
	FDs   []string            `json:"fds,omitempty"`
	Prefs [][2]int            `json:"prefs,omitempty"`
}

// Checkpoint is a compacted snapshot of the whole database at
// write-version Seq: replaying it is equivalent to replaying records
// 1..Seq. After a checkpoint is durable the log is truncated; recovery
// loads the newest checkpoint and replays only records with Seq
// beyond it.
type Checkpoint struct {
	Seq uint64 `json:"seq"`
	// Epoch is the replication epoch at the time of the checkpoint —
	// see Record.Epoch. Checkpoints written before epochs existed carry
	// 0, which recovery normalizes to the initial epoch 1.
	Epoch     uint64               `json:"epoch,omitempty"`
	Relations []CheckpointRelation `json:"relations"`
}

const (
	frameHeaderLen = 8
	// maxFrameLen bounds a single record payload; a longer length
	// prefix followed by more data is corruption, not a real record.
	maxFrameLen = 256 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the CRC frame of payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame decodes one frame at the start of data. It returns the
// payload and the total frame size. A frame cut short by the end of
// data reports torn=true; a frame whose full length is present but
// whose CRC does not match reports torn=true only when the frame ends
// exactly at the end of data (a partially persisted final append) and
// a loud error otherwise.
func readFrame(data []byte) (payload []byte, size int, torn bool, err error) {
	if len(data) < frameHeaderLen {
		return nil, 0, true, nil
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	if n > maxFrameLen {
		if frameHeaderLen+n <= len(data) {
			return nil, 0, false, fmt.Errorf("wal: frame length %d exceeds limit", n)
		}
		return nil, 0, true, nil
	}
	if frameHeaderLen+n > len(data) {
		return nil, 0, true, nil
	}
	payload = data[frameHeaderLen : frameHeaderLen+n]
	sum := binary.LittleEndian.Uint32(data[4:8])
	if crc32.Checksum(payload, crcTable) != sum {
		if frameHeaderLen+n == len(data) {
			return nil, 0, true, nil // torn final append
		}
		return nil, 0, false, fmt.Errorf("wal: CRC mismatch on a non-final record")
	}
	return payload, frameHeaderLen + n, false, nil
}

// DecodeSegment decodes every record of a raw segment. It returns the
// decoded records, the number of bytes of the valid prefix, and
// whether a torn tail (a final record cut short by a crash) was
// dropped. Corruption anywhere before the final record — a CRC
// mismatch followed by more data, an oversized length, undecodable
// JSON, a non-monotone sequence — is a loud error, never a silent
// prefix.
func DecodeSegment(data []byte) (recs []Record, validLen int, torn bool, err error) {
	off := 0
	for off < len(data) {
		payload, size, isTorn, err := readFrame(data[off:])
		if err != nil {
			return nil, 0, false, fmt.Errorf("%w (offset %d)", err, off)
		}
		if isTorn {
			return recs, off, true, nil
		}
		var rec Record
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, 0, false, fmt.Errorf("wal: record at offset %d: %w", off, err)
		}
		if len(recs) > 0 && rec.Seq != recs[len(recs)-1].Seq+1 {
			return nil, 0, false, fmt.Errorf("wal: record at offset %d: sequence %d after %d", off, rec.Seq, recs[len(recs)-1].Seq)
		}
		recs = append(recs, rec)
		off += size
	}
	return recs, off, false, nil
}

// EncodeRecord frames a record for appending to a segment — the exact
// bytes Append writes, exposed for tests and tools.
func EncodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return appendFrame(nil, payload), nil
}

// decodeCheckpoint parses a checkpoint file: a single CRC frame
// holding the JSON checkpoint. Any failure is loud — a corrupt
// checkpoint must never be silently skipped.
func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	payload, size, torn, err := readFrame(data)
	if err != nil || torn || size != len(data) {
		if err == nil {
			err = fmt.Errorf("wal: truncated or trailing bytes")
		}
		return nil, fmt.Errorf("wal: invalid checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("wal: invalid checkpoint: %w", err)
	}
	return &c, nil
}
