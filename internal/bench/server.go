package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"prefcqa"
	"prefcqa/client"
	"prefcqa/internal/server"
)

// ServerWorkload measures the prefserve serving layer end to end:
// it boots an in-process server on a loopback socket, preloads a
// relation of m two-tuple conflict clusters (each resolved by a
// preference), and drives `clients` concurrent readers issuing
// `reqs` ground G-Rep queries in total through real HTTP sockets.
// With writers > 0, that many writer goroutines concurrently run
// single-tuple update batches (delete + insert + prefer) against
// their own key ranges for the duration — the mixed read/write
// serving scenario the snapshot-per-request model exists for.
//
// The returned metric reports mean request latency as ns/op and, in
// Extra, sustained qps plus p50/p99 latency in microseconds.
func ServerWorkload(m, clients, writers, reqs int) (Metric, error) {
	name := fmt.Sprintf("server_query/%s", map[bool]string{false: "readonly", true: "mixed"}[writers > 0])
	srv := server.New(server.Options{MaxInflight: clients + writers + 4})
	db, err := srv.CreateDB("bench")
	if err != nil {
		return Metric{}, err
	}
	rel, err := db.CreateRelation("R", prefcqa.IntAttr("K"), prefcqa.IntAttr("V"))
	if err != nil {
		return Metric{}, err
	}
	if err := rel.AddFD("K -> V"); err != nil {
		return Metric{}, err
	}
	anchors := make([]int, m)
	for i := 0; i < m; i++ {
		anchors[i] = rel.MustInsert(i, 0)
		loser := rel.MustInsert(i, 1)
		if err := rel.Prefer(anchors[i], loser); err != nil {
			return Metric{}, err
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Metric{}, err
	}
	serveDone := make(chan struct{})
	go func() { srv.Serve(l); close(serveDone) }() //nolint:errcheck // ErrServerClosed on shutdown
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best effort teardown
		<-serveDone
	}()
	c := client.New("http://" + l.Addr().String())
	ctx := context.Background()

	// Warm the built state and the snapshot cache.
	if _, err := c.CountRepairs(ctx, "bench", prefcqa.Global, "R"); err != nil {
		return Metric{}, err
	}

	var (
		stop     = make(chan struct{})
		rwg, wwg sync.WaitGroup
		mu       sync.Mutex
		lats     = make([]time.Duration, 0, reqs)
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// Writers churn their own key range (disjoint from other writers)
	// until the readers finish.
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			gen, prev := 0, -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := (gen*writers + w) % m // writer-disjoint when m % writers == 0
				tup, _ := prefcqa.MakeTuple(k, 100+gen*writers+w)
				ids, _, err := c.Insert(ctx, "bench", "R", tup)
				if err != nil {
					fail(err)
					return
				}
				if _, err := c.Prefer(ctx, "bench", "R", [2]int{anchors[k], ids[0]}); err != nil {
					fail(err)
					return
				}
				if prev >= 0 {
					// Retire the previous generation to keep clusters small.
					if _, _, err := c.Delete(ctx, "bench", "R", prev); err != nil {
						fail(err)
						return
					}
				}
				prev = ids[0]
				gen++
			}
		}(w)
	}

	perClient := reqs / clients
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		rwg.Add(1)
		go func(cl int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(int64(42 + cl)))
			local := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				k := rng.Intn(m)
				t0 := time.Now()
				a, err := c.Query(ctx, "bench", prefcqa.Global, fmt.Sprintf("R(%d, 0)", k))
				if err != nil {
					fail(err)
					return
				}
				local = append(local, time.Since(t0))
				// A reader can catch a churned key between the
				// writer's insert and its prefer — the engine is then
				// *correctly* undetermined for one round-trip. Retry
				// (untimed) until the preference lands; a persistent
				// non-true answer is a real consistency bug.
				for retry := 0; a != prefcqa.True && retry < 100; retry++ {
					time.Sleep(time.Millisecond)
					if a, err = c.Query(ctx, "bench", prefcqa.Global, fmt.Sprintf("R(%d, 0)", k)); err != nil {
						fail(err)
						return
					}
				}
				if a != prefcqa.True {
					fail(fmt.Errorf("anchor R(%d, 0) = %v, want true", k, a))
					return
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(cl)
	}
	rwg.Wait() // writers keep churning until the readers are done
	elapsed := time.Since(start)
	close(stop)
	wwg.Wait()
	if firstErr != nil {
		return Metric{}, fmt.Errorf("%s: %w", name, firstErr)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(q * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	var total time.Duration
	for _, d := range lats {
		total += d
	}
	mean := float64(total.Nanoseconds()) / float64(len(lats))
	return Metric{
		Name:       name,
		Iterations: len(lats),
		NsPerOp:    mean,
		Extra: map[string]float64{
			"qps":     float64(len(lats)) / elapsed.Seconds(),
			"p50_us":  float64(pct(0.50).Microseconds()),
			"p99_us":  float64(pct(0.99).Microseconds()),
			"clients": float64(clients),
			"writers": float64(writers),
		},
	}, nil
}

// ServerWriteWorkload measures durable write throughput end to end:
// a prefserve instance rooted in a throwaway data directory under the
// given WAL sync policy, with `clients` concurrent writers issuing
// `writes` single-tuple inserts in total over real HTTP sockets. Each
// insert is one logged (and, under fsync=always, fsynced-before-ack)
// mutation batch; concurrent committers exercise the group-commit
// flusher. Rows are named server_write/<always|group|off> — the
// durability cost trajectory next to the serving-layer query rows.
func ServerWriteWorkload(policy prefcqa.SyncPolicy, clients, writes int) (Metric, error) {
	label := policy.String()
	if policy == prefcqa.SyncNever {
		label = "off"
	}
	name := "server_write/" + label
	dir, err := os.MkdirTemp("", "prefbench-wal-*")
	if err != nil {
		return Metric{}, err
	}
	defer os.RemoveAll(dir)
	srv := server.New(server.Options{
		MaxInflight: clients + 4,
		DataDir:     dir,
		DBOptions:   []prefcqa.Option{prefcqa.WithSyncPolicy(policy)},
	})
	db, err := srv.CreateDB("bench")
	if err != nil {
		return Metric{}, err
	}
	rel, err := db.CreateRelation("R", prefcqa.IntAttr("K"), prefcqa.IntAttr("V"))
	if err != nil {
		return Metric{}, err
	}
	if err := rel.AddFD("K -> V"); err != nil {
		return Metric{}, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Metric{}, err
	}
	serveDone := make(chan struct{})
	go func() { srv.Serve(l); close(serveDone) }() //nolint:errcheck // ErrServerClosed on shutdown
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best effort teardown
		<-serveDone
	}()
	c := client.New("http://" + l.Addr().String())
	ctx := context.Background()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     = make([]time.Duration, 0, writes)
		firstErr error
	)
	perClient := writes / clients
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			local := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				// Unique keys: every insert is a fresh logged tuple,
				// never a duplicate no-op.
				tup, _ := prefcqa.MakeTuple(cl*perClient+i, 0)
				t0 := time.Now()
				_, _, err := c.Insert(ctx, "bench", "R", tup)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return Metric{}, fmt.Errorf("%s: %w", name, firstErr)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		i := int(q * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	var total time.Duration
	for _, d := range lats {
		total += d
	}
	return Metric{
		Name:       name,
		Iterations: len(lats),
		NsPerOp:    float64(total.Nanoseconds()) / float64(len(lats)),
		Extra: map[string]float64{
			"write_qps": float64(len(lats)) / elapsed.Seconds(),
			"p50_us":    float64(pct(0.50).Microseconds()),
			"p99_us":    float64(pct(0.99).Microseconds()),
			"clients":   float64(clients),
		},
	}, nil
}
