package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"testing"
	"time"

	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/conflict"
	"prefcqa/internal/core"
	"prefcqa/internal/cqa"
	"prefcqa/internal/priority"
	"prefcqa/internal/relation"
	"prefcqa/internal/repair"
	"prefcqa/internal/workload"
)

// Metric is one machine-readable benchmark result. NsPerOp, BytesPerOp
// and AllocsPerOp mirror `go test -bench -benchmem`; Extra carries
// metric-specific throughput numbers (e.g. repairs_per_sec).
type Metric struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the JSON document emitted by `prefbench -json`. Checked-in
// snapshots (BENCH_<pr>.json) accumulate the performance trajectory of
// the repo across PRs.
type Report struct {
	Schema      string   `json:"schema"`
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	CPUs        int      `json:"cpus"`
	Quick       bool     `json:"quick"`
	Results     []Metric `json:"results"`
}

// measure runs fn under the testing benchmark harness and records the
// result. extra maps metric names to per-op counts that are converted
// to per-second rates (count * 1e9 / ns_per_op).
func measure(name string, extra map[string]float64, fn func(b *testing.B)) Metric {
	r := testing.Benchmark(fn)
	m := Metric{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if len(extra) > 0 && m.NsPerOp > 0 {
		m.Extra = map[string]float64{}
		for k, perOp := range extra {
			m.Extra[k+"_per_sec"] = perOp * 1e9 / m.NsPerOp
		}
	}
	return m
}

// JSON runs the machine-readable benchmark suite. The suite is the
// stable core of the repo's performance surface: conflict-graph
// construction, priority generation, per-component enumeration,
// componentwise counting, cleaning, and ground CQA.
func JSON(o Options) Report {
	rep := Report{
		Schema:      "prefbench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Quick:       o.Quick,
	}
	pick := func(quick, full int) int {
		if o.Quick {
			return quick
		}
		return full
	}

	// Conflict-graph construction (CSR streaming build).
	pairsN := pick(1024, 4096)
	pairs := workload.Pairs(pairsN)
	rep.add(measure("conflict_build/pairs", map[string]float64{"tuples": float64(2 * pairsN)}, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conflict.MustBuild(pairs.Inst, pairs.FDs)
		}
	}))
	clustersM := pick(10_000, 50_000)
	big := workload.Clusters(clustersM, 2)
	rep.add(measure("conflict_build/clusters", map[string]float64{"tuples": float64(2 * clustersM)}, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conflict.MustBuild(big.Inst, big.FDs)
		}
	}))

	// Priority generation over every conflict edge.
	bigG := big.Graph()
	rep.add(measure("priority_from_ranks/clusters", map[string]float64{"edges": float64(clustersM)}, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			priority.FromRanks(bigG, func(id relation.TupleID) int { return id % 2 })
		}
	}))

	// Per-component enumeration: allocation-free local Bron–Kerbosch.
	chain := workload.Chain(pick(16, 24))
	chainComp := chain.Graph().Components()[0]
	sets := float64(repair.CountComponent(chain.Graph(), chainComp))
	rep.add(measure("component_enumeration/chain", map[string]float64{"repairs": sets}, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			repair.CountComponent(chain.Graph(), chainComp)
		}
	}))

	// Componentwise counting on the large sparse instance, per family,
	// on the production engine (workers + memo).
	bigP := priority.FromRanks(bigG, func(id relation.TupleID) int { return id % 2 })
	eng := core.NewEngine()
	for _, f := range []core.Family{core.Local, core.Global, core.Common} {
		f := f
		rep.add(measure("engine_count/"+f.String()+"/clusters",
			map[string]float64{"components": float64(clustersM)}, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := eng.Count(f, bigP); err != nil {
						b.Fatal(err)
					}
				}
			}))
	}

	// Full enumeration throughput in repairs/sec.
	enumSc := workload.Clusters(pick(8, 10), 3)
	enumCount := 0
	core.Enumerate(core.Rep, enumSc.Pri, func(*bitset.Set) bool { enumCount++; return true }) //nolint:errcheck
	rep.add(measure("enumerate/rep/clusters", map[string]float64{"repairs": float64(enumCount)}, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Enumerate(core.Rep, enumSc.Pri, func(*bitset.Set) bool { return true }) //nolint:errcheck
		}
	}))

	// Algorithm 1 cleaning.
	cleanSc := workload.Clusters(pick(400, 1600), 3)
	cleanP := cleanSc.Pri.TotalExtension(nil)
	rep.add(measure("clean_deterministic/clusters",
		map[string]float64{"tuples": float64(cleanSc.Inst.Len())}, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clean.Deterministic(cleanP)
			}
		}))

	// Ground quantifier-free CQA (the PTIME witness-cover path).
	cqaN := pick(16, 32)
	cqaSc := workload.Pairs(cqaN)
	in, err := cqa.NewInput(&cqa.Relation{Inst: cqaSc.Inst, FDs: cqaSc.FDs, Pri: cqaSc.Pri})
	if err == nil {
		q := groundOrQuery(cqaN)
		rep.add(measure("ground_cqa/pairs", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cqa.GroundQFEvaluate(in, q); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return rep
}

func (r *Report) add(m Metric) { r.Results = append(r.Results, m) }

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
