package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"prefcqa"
	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/conflict"
	"prefcqa/internal/core"
	"prefcqa/internal/cqa"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
	"prefcqa/internal/repair"
	"prefcqa/internal/workload"
)

// Metric is one machine-readable benchmark result. NsPerOp, BytesPerOp
// and AllocsPerOp mirror `go test -bench -benchmem`; Extra carries
// metric-specific throughput numbers (e.g. repairs_per_sec).
type Metric struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the JSON document emitted by `prefbench -json`. Checked-in
// snapshots (BENCH_<pr>.json) accumulate the performance trajectory of
// the repo across PRs.
type Report struct {
	Schema      string   `json:"schema"`
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	CPUs        int      `json:"cpus"`
	Quick       bool     `json:"quick"`
	Results     []Metric `json:"results"`
}

// measure runs fn under the testing benchmark harness and records the
// result. extra maps metric names to per-op counts that are converted
// to per-second rates (count * 1e9 / ns_per_op).
func measure(name string, extra map[string]float64, fn func(b *testing.B)) Metric {
	r := testing.Benchmark(fn)
	m := Metric{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if len(extra) > 0 && m.NsPerOp > 0 {
		m.Extra = map[string]float64{}
		for k, perOp := range extra {
			m.Extra[k+"_per_sec"] = perOp * 1e9 / m.NsPerOp
		}
	}
	return m
}

// JSON runs the machine-readable benchmark suite. The suite is the
// stable core of the repo's performance surface: conflict-graph
// construction, priority generation, per-component enumeration,
// componentwise counting, cleaning, and ground CQA.
func JSON(o Options) Report {
	rep := Report{
		Schema:      "prefbench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Quick:       o.Quick,
	}
	pick := func(quick, full int) int {
		if o.Quick {
			return quick
		}
		return full
	}

	// Conflict-graph construction (CSR streaming build).
	pairsN := pick(1024, 4096)
	if o.want("conflict_build/pairs") {
		pairs := workload.Pairs(pairsN)
		rep.add(measure("conflict_build/pairs", map[string]float64{"tuples": float64(2 * pairsN)}, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conflict.MustBuild(pairs.Inst, pairs.FDs)
			}
		}))
	}
	clustersM := pick(10_000, 50_000)
	// The large sparse clusters instance is shared by three workloads;
	// build it lazily so a -workloads filter skipping all of them
	// skips the construction too.
	var bigMemo *workload.Scenario
	big := func() *workload.Scenario {
		if bigMemo == nil {
			bigMemo = workload.Clusters(clustersM, 2)
		}
		return bigMemo
	}
	if o.want("conflict_build/clusters") {
		rep.add(measure("conflict_build/clusters", map[string]float64{"tuples": float64(2 * clustersM)}, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conflict.MustBuild(big().Inst, big().FDs)
			}
		}))
	}

	// Priority generation over every conflict edge.
	if o.want("priority_from_ranks") {
		bigG := big().Graph()
		rep.add(measure("priority_from_ranks/clusters", map[string]float64{"edges": float64(clustersM)}, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				priority.FromRanks(bigG, func(id relation.TupleID) int { return id % 2 })
			}
		}))
	}

	// Per-component enumeration: allocation-free local Bron–Kerbosch.
	if o.want("component_enumeration") {
		chain := workload.Chain(pick(16, 24))
		chainComp := chain.Graph().Components()[0]
		sets := float64(repair.CountComponent(chain.Graph(), chainComp))
		rep.add(measure("component_enumeration/chain", map[string]float64{"repairs": sets}, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				repair.CountComponent(chain.Graph(), chainComp)
			}
		}))
	}

	// Componentwise counting on the large sparse instance, per family,
	// on the production engine (workers + memo).
	for _, f := range []core.Family{core.Local, core.Global, core.Common} {
		f := f
		name := "engine_count/" + f.String() + "/clusters"
		if !o.want(name) {
			continue
		}
		bigP := priority.FromRanks(big().Graph(), func(id relation.TupleID) int { return id % 2 })
		eng := core.NewEngine()
		rep.add(measure(name,
			map[string]float64{"components": float64(clustersM)}, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := eng.Count(f, bigP); err != nil {
						b.Fatal(err)
					}
				}
			}))
	}

	// Full enumeration throughput in repairs/sec.
	if o.want("enumerate/rep") {
		enumSc := workload.Clusters(pick(8, 10), 3)
		enumCount := 0
		core.Enumerate(core.Rep, enumSc.Pri, func(*bitset.Set) bool { enumCount++; return true }) //nolint:errcheck
		rep.add(measure("enumerate/rep/clusters", map[string]float64{"repairs": float64(enumCount)}, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Enumerate(core.Rep, enumSc.Pri, func(*bitset.Set) bool { return true }) //nolint:errcheck
			}
		}))
	}

	// Algorithm 1 cleaning.
	if o.want("clean_deterministic") {
		cleanSc := workload.Clusters(pick(400, 1600), 3)
		cleanP := cleanSc.Pri.TotalExtension(nil)
		rep.add(measure("clean_deterministic/clusters",
			map[string]float64{"tuples": float64(cleanSc.Inst.Len())}, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					clean.Deterministic(cleanP)
				}
			}))
	}

	// Ground quantifier-free CQA (the PTIME witness-cover path).
	if o.want("ground_cqa") {
		cqaN := pick(16, 32)
		cqaSc := workload.Pairs(cqaN)
		in, err := cqa.NewInput(&cqa.Relation{Inst: cqaSc.Inst, FDs: cqaSc.FDs, Pri: cqaSc.Pri})
		if err == nil {
			q := groundOrQuery(cqaN)
			rep.add(measure("ground_cqa/pairs", nil, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := cqa.GroundQFEvaluate(in, q); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}

	// Mutation workload: a hot serving scenario over a large instance —
	// single-tuple updates (delete + insert + re-orient) each followed
	// by a ground query (or a repair count), on incremental delta
	// maintenance vs the full-rebuild baseline (WithIncremental(false)).
	// The tuple count matches the conflict_build/clusters instance:
	// 2 * clustersM tuples.
	mutM := pick(10_000, 50_000)
	for _, kind := range []string{"query", "count"} {
		kind := kind
		if !o.want("mutation_update_" + kind) {
			continue
		}
		incMetric := measure("mutation_update_"+kind+"/incremental", nil, MutationWorkload(mutM, true, kind))
		rebMetric := measure("mutation_update_"+kind+"/rebuild", nil, MutationWorkload(mutM, false, kind))
		rep.add(incMetric)
		rep.add(rebMetric)
		if incMetric.NsPerOp > 0 {
			rep.add(Metric{
				Name:       "mutation_update_" + kind + "/speedup",
				Iterations: 1,
				Extra:      map[string]float64{"x": rebMetric.NsPerOp / incMetric.NsPerOp},
			})
		}
	}

	// Selective-query workloads: the planner's index access paths vs
	// forced scans on a large instance. "point" and "join" are
	// high-selectivity (a ten-tuple posting out of selN tuples),
	// "lowsel" matches half the instance — the case where an index
	// can only win a constant factor.
	selN := pick(10_000, 100_000)
	for _, kind := range []string{"point", "join", "lowsel"} {
		kind := kind
		if !o.want("selective_" + kind) {
			continue
		}
		idxMetric := measure("selective_"+kind+"_query/indexed",
			map[string]float64{"tuples": float64(selN)}, SelectiveWorkload(selN, true, kind))
		scanMetric := measure("selective_"+kind+"_query/scan",
			map[string]float64{"tuples": float64(selN)}, SelectiveWorkload(selN, false, kind))
		rep.add(idxMetric)
		rep.add(scanMetric)
		if idxMetric.NsPerOp > 0 {
			rep.add(Metric{
				Name:       "selective_" + kind + "_query/speedup",
				Iterations: 1,
				Extra:      map[string]float64{"x": scanMetric.NsPerOp / idxMetric.NsPerOp},
			})
		}
	}

	// Acyclic-join workload: a three-atom chain with an empty join,
	// answered by the Yannakakis executor (bottom-up semijoin
	// reduction) vs the vectorized greedy executor forced via
	// query.EvalGreedy. No scan baseline: without index access paths
	// the chain is quadratic and does not terminate in benchmark time
	// at this scale.
	if o.want("acyclic_chain_query") {
		acyN := pick(10_000, 100_000)
		yanMetric := measure("acyclic_chain_query/yannakakis",
			map[string]float64{"tuples": float64(acyN)}, AcyclicWorkload(acyN, "yannakakis"))
		greedyMetric := measure("acyclic_chain_query/greedy",
			map[string]float64{"tuples": float64(acyN)}, AcyclicWorkload(acyN, "greedy"))
		rep.add(yanMetric)
		rep.add(greedyMetric)
		if yanMetric.NsPerOp > 0 {
			rep.add(Metric{
				Name:       "acyclic_chain_query/speedup",
				Iterations: 1,
				Extra:      map[string]float64{"x": greedyMetric.NsPerOp / yanMetric.NsPerOp},
			})
		}
	}

	// Open-query workload: certain answers of an open query over a
	// mostly-clean instance, answered by direct spine enumeration
	// (compile once, enumerate candidate bindings off the columnar
	// data, verify survivors) vs the active-domain substitution
	// baseline, which re-evaluates the closed query once per candidate
	// value of the free variable. Sized below the join workloads: each
	// surviving candidate costs a full repair-enumerating closed check,
	// and the substitution baseline pays it for the whole kind-pruned
	// domain (200 names here), which at 100k tuples would not finish
	// in benchmark time — that gap is the point of the direct path.
	if o.want("open_query") {
		openN := pick(2_000, 10_000)
		directMetric := measure("open_query/direct",
			map[string]float64{"tuples": float64(openN)}, OpenQueryWorkload(openN, "direct"))
		substMetric := measure("open_query/subst",
			map[string]float64{"tuples": float64(openN)}, OpenQueryWorkload(openN, "subst"))
		rep.add(directMetric)
		rep.add(substMetric)
		if directMetric.NsPerOp > 0 {
			rep.add(Metric{
				Name:       "open_query/speedup",
				Iterations: 1,
				Extra:      map[string]float64{"x": substMetric.NsPerOp / directMetric.NsPerOp},
			})
		}
	}

	// Cyclic-join workload: an empty triangle join, answered by the
	// worst-case-optimal generic join (per-variable posting
	// intersection) vs the vectorized greedy executor forced via
	// query.EvalGreedy. The workload asserts the cost-based planner
	// actually picked the WCOJ executor.
	if o.want("cyclic_triangle_query") {
		cycN := pick(10_000, 100_000)
		wcojMetric := measure("cyclic_triangle_query/wcoj",
			map[string]float64{"tuples": float64(cycN)}, CyclicWorkload(cycN, "wcoj"))
		cgreedyMetric := measure("cyclic_triangle_query/greedy",
			map[string]float64{"tuples": float64(cycN)}, CyclicWorkload(cycN, "greedy"))
		rep.add(wcojMetric)
		rep.add(cgreedyMetric)
		if wcojMetric.NsPerOp > 0 {
			rep.add(Metric{
				Name:       "cyclic_triangle_query/speedup",
				Iterations: 1,
				Extra:      map[string]float64{"x": cgreedyMetric.NsPerOp / wcojMetric.NsPerOp},
			})
		}
	}

	// Verification workload: one quantified closed query over a large
	// multi-component instance, answered by the component-pruned
	// vectorized repair walk (cqa.Evaluate) vs the pinned full
	// whole-database repair enumeration (cqa.EvaluateFull). The
	// workload asserts both paths agree and that the pruned path
	// actually fired (EvalStats.ClosedPruned).
	verifyN := pick(10_000, 100_000)
	if o.want("verify_query") {
		prunedMetric := measure("verify_query/pruned",
			map[string]float64{"tuples": float64(verifyN)}, VerifyWorkload(verifyN, "pruned"))
		fullMetric := measure("verify_query/full",
			map[string]float64{"tuples": float64(verifyN)}, VerifyWorkload(verifyN, "full"))
		rep.add(prunedMetric)
		rep.add(fullMetric)
		if prunedMetric.NsPerOp > 0 {
			rep.add(Metric{
				Name:       "verify_query/speedup",
				Iterations: 1,
				Extra:      map[string]float64{"x": fullMetric.NsPerOp / prunedMetric.NsPerOp},
			})
		}
	}

	// Serving-layer workload: sustained concurrent ground queries
	// against a live prefserve over real loopback sockets, snapshot
	// per read — first read-only, then with concurrent writers
	// churning single-tuple update batches through the incremental
	// delta path. Reports qps and p50/p99 latency.
	srvM := pick(1_000, 10_000)
	srvReqs := pick(800, 4_000)
	for _, writers := range []int{0, 2} {
		if !o.want("server_query") {
			break
		}
		m, err := ServerWorkload(srvM, 8, writers, srvReqs)
		if err != nil {
			m = Metric{Name: fmt.Sprintf("server_query/%s", map[bool]string{false: "readonly", true: "mixed"}[writers > 0]),
				Extra: map[string]float64{"failed": 1}}
			fmt.Fprintln(os.Stderr, "server workload failed:", err)
		}
		rep.add(m)
	}

	// Durability cost: sustained write throughput through the full
	// stack — HTTP, facade, write-ahead log — under each fsync
	// policy. fsync=off is the no-durability-cost baseline (the log
	// is written, the OS flushes), group batches fsyncs on a short
	// timer, always fsyncs before every ack (group commit shares
	// fsyncs across concurrent committers).
	durWrites := pick(400, 2_000)
	for _, policy := range []prefcqa.SyncPolicy{prefcqa.SyncNever, prefcqa.SyncGroup, prefcqa.SyncAlways} {
		if !o.want("server_write") {
			break
		}
		m, err := ServerWriteWorkload(policy, 8, durWrites)
		if err != nil {
			label := policy.String()
			if policy == prefcqa.SyncNever {
				label = "off"
			}
			m = Metric{Name: "server_write/" + label, Extra: map[string]float64{"failed": 1}}
			fmt.Fprintln(os.Stderr, "durable write workload failed:", err)
		}
		rep.add(m)
	}

	// Replication read scale-out: the same ground-query read workload,
	// served through 1..N WAL-shipping followers behind a
	// follower-aware ReplicaSet, every read pinned at the preload's
	// write-version. qps across rows is the scale-out curve; lag_p99
	// is the acked-write → follower-readable catch-up tail.
	replM := pick(500, 5_000)
	replReqs := pick(600, 3_000)
	for _, followers := range []int{1, 2, 3} {
		if !o.want("repl_read_scaleout") {
			break
		}
		m, err := ReplicationWorkload(replM, followers, 8, replReqs)
		if err != nil {
			m = Metric{Name: fmt.Sprintf("repl_read_scaleout/f%d", followers), Extra: map[string]float64{"failed": 1}}
			fmt.Fprintln(os.Stderr, "replication workload failed:", err)
		}
		rep.add(m)
	}
	return rep
}

// SelectiveWorkload builds an n-tuple relation R(K, L, V) — K
// point-selective (ten tuples per key), L half-selective — plus an
// n-tuple join target S(W, X) with unique W, and returns a benchmark
// whose op is one closed selective query answered by the cost-based
// planner. Every query carries an always-false residual so the
// access path is traversed in full instead of short-circuiting at
// the first match:
//
//	point   EXISTS l, v . R(7, l, v) AND v < 0          (10-row posting)
//	join    EXISTS l, v, x . R(7, l, v) AND S(v, x) AND x < 0
//	lowsel  EXISTS k, v . R(k, 1, v) AND v < 0          (n/2-row posting)
//
// indexed=false evaluates the same plans with index access paths
// disabled (query.ScanOnly), the baseline of the BENCH_*.json
// selective speedup rows. Exported so the top-level go-bench suite
// measures exactly the prefbench workload.
func SelectiveWorkload(n int, indexed bool, kind string) func(b *testing.B) {
	return func(b *testing.B) {
		db := relation.NewDatabase()
		r := relation.NewInstance(relation.MustSchema("R",
			relation.IntAttr("K"), relation.IntAttr("L"), relation.IntAttr("V")))
		for i := 0; i < n; i++ {
			r.MustInsert(i/10, i%2, i)
		}
		s := relation.NewInstance(relation.MustSchema("S",
			relation.IntAttr("W"), relation.IntAttr("X")))
		for i := 0; i < n; i++ {
			s.MustInsert(i, i)
		}
		if err := db.AddInstance(r); err != nil {
			b.Fatal(err)
		}
		if err := db.AddInstance(s); err != nil {
			b.Fatal(err)
		}
		var m query.Model = query.DBModel{DB: db}
		if !indexed {
			m = query.ScanOnly(m)
		}
		var src string
		switch kind {
		case "point":
			src = "EXISTS l, v . R(7, l, v) AND v < 0"
		case "join":
			src = "EXISTS l, v, x . R(7, l, v) AND S(v, x) AND x < 0"
		case "lowsel":
			src = "EXISTS k, v . R(k, 1, v) AND v < 0"
		default:
			b.Fatalf("unknown selective workload %q", kind)
		}
		q := query.MustParse(src)
		// Warm the lazily built indexes so ops measure steady state.
		if res, err := query.Eval(q, m); err != nil || res {
			b.Fatalf("warmup: %v, %v", res, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := query.Eval(q, m)
			if err != nil || res {
				b.Fatalf("%v, %v", res, err)
			}
		}
	}
}

// AcyclicWorkload builds a three-relation chain R(A,B) ⋈ S(B,C) ⋈
// T(C,D) with n tuples each, where S and T share no C values, and
// returns a benchmark whose op is the closed chain query
//
//	EXISTS a, b, c, d . R(a, b) AND S(b, c) AND T(c, d)
//
// The join is empty, so no executor can short-circuit on a witness:
// the vectorized greedy executor walks all n R tuples probing S and
// T per tuple, while the Yannakakis executor discovers the emptiness
// in one bottom-up semijoin pass (T semijoin S empties T's mask) and
// never enumerates. mode selects the executor: "yannakakis" is the
// cost-based query.Eval, asserted to actually pick the Yannakakis
// path; "greedy" forces the vectorized greedy executor via
// query.EvalGreedy. Exported so the top-level go-bench suite measures
// exactly the prefbench workload.
func AcyclicWorkload(n int, mode string) func(b *testing.B) {
	return func(b *testing.B) {
		db := relation.NewDatabase()
		r := relation.NewInstance(relation.MustSchema("R",
			relation.IntAttr("A"), relation.IntAttr("B")))
		s := relation.NewInstance(relation.MustSchema("S",
			relation.IntAttr("B"), relation.IntAttr("C")))
		tr := relation.NewInstance(relation.MustSchema("T",
			relation.IntAttr("C"), relation.IntAttr("D")))
		for i := 0; i < n; i++ {
			r.MustInsert(i, i)
			s.MustInsert(i, i)
			tr.MustInsert(i+n, i) // S.C and T.C are disjoint
		}
		for _, inst := range []*relation.Instance{r, s, tr} {
			if err := db.AddInstance(inst); err != nil {
				b.Fatal(err)
			}
		}
		m := query.DBModel{DB: db}
		eval := query.Eval
		if mode == "greedy" {
			eval = query.EvalGreedy
		} else if mode != "yannakakis" {
			b.Fatalf("unknown acyclic workload mode %q", mode)
		}
		q := query.MustParse("EXISTS a, b, c, d . R(a, b) AND S(b, c) AND T(c, d)")
		// Warm the lazily built indexes; in Yannakakis mode also pin
		// that the cost-based planner actually chose that executor.
		if mode == "yannakakis" {
			res, trace, err := query.EvalTrace(q, m)
			if err != nil || res {
				b.Fatalf("warmup: %v, %v", res, err)
			}
			if len(trace.Execs) == 0 || trace.Execs[0].Executor != query.ExecYannakakis {
				b.Fatalf("planner did not choose the Yannakakis executor:\n%s",
					trace.Execs[0].Describe())
			}
		} else if res, err := eval(q, m); err != nil || res {
			b.Fatalf("warmup: %v, %v", res, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eval(q, m)
			if err != nil || res {
				b.Fatalf("%v, %v", res, err)
			}
		}
	}
}

// OpenQueryWorkload builds an n-tuple relation R(Name, Val) — Name
// cycling through 100 distinct names, Val unique — plus 100 oriented
// key conflicts on the FD Val -> Name (twin names), and returns a
// benchmark whose op is the certain-answer set of the open query
//
//	EXISTS v . R(x, v) AND v > n-6
//
// under the globally-optimal family. Every candidate the spine does
// not kill costs one closed certain-answer check, and that check
// enumerates preferred repairs of the whole instance — so the win of
// the direct path is proportional to the candidates it prunes. mode
// selects the executor: "direct" is cqa.FreeAnswers, asserted (via
// cqa.EvalStats) to take the direct spine-enumeration path — one
// columnar pass finds the 5 names the residual leaves alive, and only
// those are verified. "subst" forces the active-domain substitution
// baseline (cqa.FreeAnswersSubst), which closed-evaluates all 200
// names of x's kind-pruned domain (kind-aware pruning already keeps
// the n distinct integers out; without it the baseline would not
// terminate in benchmark time). Exported so the top-level go-bench
// suite measures exactly the prefbench workload.
func OpenQueryWorkload(n int, mode string) func(b *testing.B) {
	return func(b *testing.B) {
		schema := relation.MustSchema("R", relation.NameAttr("Name"), relation.IntAttr("Val"))
		inst := relation.NewInstance(schema)
		first := make([]relation.TupleID, 100) // the ("u<j>", j) tuple of each conflict pair
		for i := 0; i < n; i++ {
			id := inst.MustInsert(fmt.Sprintf("u%d", i%100), i)
			if i < 100 {
				first[i] = id
			}
		}
		// 100 conflicting twins (same Val, different Name) — a mostly-
		// clean instance with real conflicts, oriented to the original.
		twins := make([]relation.TupleID, 100)
		for j := 0; j < 100; j++ {
			twins[j] = inst.MustInsert(fmt.Sprintf("x%d", j), j)
		}
		rel, err := cqa.NewRelation(inst, fd.MustParseSet(schema, "Val -> Name"))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			rel.Pri.MustAdd(first[j], twins[j])
		}
		in, err := cqa.NewInput(rel)
		if err != nil {
			b.Fatal(err)
		}
		stats := &cqa.EvalStats{}
		in = in.WithStats(stats)
		q := query.MustParse(fmt.Sprintf("EXISTS v . R(x, v) AND v > %d", n-6))
		answers := func() []cqa.Binding {
			var ans []cqa.Binding
			var err error
			switch mode {
			case "direct":
				ans, err = cqa.FreeAnswers(core.Global, in, q)
			case "subst":
				ans, err = cqa.FreeAnswersSubst(core.Global, in, q)
			default:
				b.Fatalf("unknown open workload mode %q", mode)
			}
			if err != nil {
				b.Fatal(err)
			}
			return ans
		}
		// Warm the lazily built indexes; the 5 matching tuples are
		// conflict-free, so the answer count is family-independent. In
		// direct mode also pin that the direct path actually fired.
		if got := len(answers()); got != 5 {
			b.Fatalf("warmup: %d answers, want 5", got)
		}
		if snap := stats.Snapshot(); mode == "direct" && (snap.OpenDirect == 0 || snap.OpenFallback != 0) {
			b.Fatalf("direct open enumeration did not fire: %+v", snap)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := len(answers()); got != 5 {
				b.Fatalf("%d answers, want 5", got)
			}
		}
	}
}

// CyclicWorkload builds a triangle R(A,B) ⋈ S(B,C) ⋈ T(C,A) with n
// tuples per relation over 1000 distinct join values, T's A column
// offset so the join is empty, and returns a benchmark whose op is
// the closed triangle query
//
//	EXISTS a, b, c . R(a, b) AND S(b, c) AND T(c, a)
//
// The spine is cyclic (GYO ear removal fails), so the cost-based
// planner hands it to the worst-case-optimal generic join, which
// discovers the emptiness at the first variable level: every
// candidate a value has an empty T posting, so no (a, b) pair is ever
// enumerated. The greedy baseline (mode "greedy", query.EvalGreedy)
// instead walks all n R tuples and probes S and T per tuple. mode
// "wcoj" is the cost-based query.Eval, asserted to actually pick the
// WCOJ executor. Exported so the top-level go-bench suite measures
// exactly the prefbench workload.
func CyclicWorkload(n int, mode string) func(b *testing.B) {
	return func(b *testing.B) {
		const v = 1000 // distinct values per join column
		db := relation.NewDatabase()
		r := relation.NewInstance(relation.MustSchema("R",
			relation.IntAttr("A"), relation.IntAttr("B")))
		s := relation.NewInstance(relation.MustSchema("S",
			relation.IntAttr("B"), relation.IntAttr("C")))
		tr := relation.NewInstance(relation.MustSchema("T",
			relation.IntAttr("C"), relation.IntAttr("A")))
		for i := 0; i < n; i++ {
			lo, fan := i%v, (i%v+i/v)%v // n distinct pairs, n/v fan-out per value
			r.MustInsert(lo, fan)
			s.MustInsert(lo, fan)
			tr.MustInsert(lo, v+fan) // T.A and R.A are disjoint
		}
		for _, inst := range []*relation.Instance{r, s, tr} {
			if err := db.AddInstance(inst); err != nil {
				b.Fatal(err)
			}
		}
		m := query.DBModel{DB: db}
		eval := query.Eval
		if mode == "greedy" {
			eval = query.EvalGreedy
		} else if mode != "wcoj" {
			b.Fatalf("unknown cyclic workload mode %q", mode)
		}
		q := query.MustParse("EXISTS a, b, c . R(a, b) AND S(b, c) AND T(c, a)")
		// Warm the lazily built indexes; in WCOJ mode also pin that the
		// cost-based planner actually chose the generic join.
		if mode == "wcoj" {
			res, trace, err := query.EvalTrace(q, m)
			if err != nil || res {
				b.Fatalf("warmup: %v, %v", res, err)
			}
			if len(trace.Execs) == 0 || trace.Execs[0].Executor != query.ExecWCOJ {
				b.Fatalf("planner did not choose the WCOJ executor:\n%s",
					trace.Execs[0].Describe())
			}
		} else if res, err := eval(q, m); err != nil || res {
			b.Fatalf("warmup: %v, %v", res, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eval(q, m)
			if err != nil || res {
				b.Fatalf("%v, %v", res, err)
			}
		}
	}
}

// MutationWorkload builds a 2m-tuple instance (m conflict pairs, each
// resolved by a preference) and returns a benchmark whose op is one
// single-tuple update — delete one side of a rotating conflict pair,
// insert a replacement, orient the fresh conflict — plus one read:
// a ground query under G-Rep (kind "query") or a full repair count
// (kind "count"). With incremental maintenance the update touches one
// component (the query then reads it; the count multiplies cached
// per-component counts); with it disabled every op rebuilds graph,
// priority and component index from scratch.
// It is exported so the top-level go-bench suite measures exactly the
// workload the prefbench JSON snapshots (BENCH_*.json) are based on.
func MutationWorkload(m int, incremental bool, kind string) func(b *testing.B) {
	return func(b *testing.B) {
		db := prefcqa.New(prefcqa.WithIncremental(incremental))
		r, err := db.CreateRelation("R", prefcqa.IntAttr("K"), prefcqa.IntAttr("V"))
		if err != nil {
			b.Fatal(err)
		}
		if err := r.AddFD("K -> V"); err != nil {
			b.Fatal(err)
		}
		anchor := make([]prefcqa.TupleID, m) // the (key, 0) tuple of each cluster
		for i := 0; i < m; i++ {
			anchor[i] = r.MustInsert(i, 0)
			loser := r.MustInsert(i, 1)
			if err := r.Prefer(anchor[i], loser); err != nil {
				b.Fatal(err)
			}
		}
		if c, err := db.CountRepairs(prefcqa.Global, "R"); err != nil || c != 1 {
			b.Fatalf("initial G-Rep count = %d, %v; want 1", c, err) // build and publish
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key, gen := i%m, i/m
			// Update: replace the cluster's (key, 1+gen) tuple with the
			// next value, keeping every cluster at two live tuples with
			// the conflict resolved toward the anchor.
			old, ok := r.Instance().Lookup(prefcqa.Tuple{prefcqa.Int(int64(key)), prefcqa.Int(int64(1 + gen))})
			if ok {
				r.Delete(old)
			}
			id, err := r.Insert(key, 2+gen)
			if err != nil {
				b.Fatal(err)
			}
			if err := r.Prefer(anchor[key], id); err != nil {
				b.Fatal(err)
			}
			if kind == "count" {
				if c, err := db.CountRepairs(prefcqa.Global, "R"); err != nil || c != 1 {
					b.Fatalf("G-Rep count = %d, %v", c, err)
				}
				continue
			}
			a, err := db.Query(prefcqa.Global, fmt.Sprintf("R(%d, 0)", key))
			if err != nil {
				b.Fatal(err)
			}
			if a != prefcqa.True {
				b.Fatalf("anchor (%d, 0) not certain: %v", key, a)
			}
		}
	}
}

func (r *Report) add(m Metric) { r.Results = append(r.Results, m) }

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
