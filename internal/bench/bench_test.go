package bench

import (
	"strings"
	"testing"
	"time"
)

var quick = Options{Quick: true}

func TestAllExperimentsRender(t *testing.T) {
	exps := map[string]func(Options) []*Table{
		"fig1":    Fig1,
		"fig2":    Fig2,
		"fig3":    Fig3,
		"fig4":    Fig4,
		"props":   Props,
		"clean":   CleanExp,
		"check":   Fig5RepairCheck,
		"cqa":     Fig5CQA,
		"denial":  DenialExp,
		"pruning": AblationPruning,
	}
	for name, fn := range exps {
		tabs := fn(quick)
		if len(tabs) == 0 {
			t.Errorf("%s: no tables", name)
		}
		for _, tab := range tabs {
			out := tab.String()
			if !strings.Contains(out, "==") || len(tab.Rows) == 0 {
				t.Errorf("%s: empty table %q", name, tab.Title)
			}
			// Every row must have as many cells as the header.
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("%s/%s: row %v has %d cells, header %d",
						name, tab.Title, row, len(row), len(tab.Header))
				}
			}
		}
	}
}

func TestFig2Content(t *testing.T) {
	out := Fig2(quick)[0].String()
	// L-Rep must have exactly one repair {(1, 1)}.
	if !strings.Contains(out, "L-Rep") || !strings.Contains(out, "(1, 1)") {
		t.Fatalf("Fig2 output:\n%s", out)
	}
}

func TestFig4Deviation(t *testing.T) {
	tabs := Fig4(quick)
	if len(tabs) != 2 {
		t.Fatal("Fig4 should produce the literal and reconstructed tables")
	}
	lit := tabs[0].String()
	if !strings.Contains(lit, "DEVIATION") {
		t.Fatal("Fig4a should document the deviation")
	}
	mut := tabs[1].String()
	// Reconstructed: S-Rep row must show count 2, G-Rep row count 1.
	foundS, foundG := false, false
	for _, row := range tabs[1].Rows {
		if row[0] == "S-Rep" && row[1] == "2" {
			foundS = true
		}
		if row[0] == "G-Rep" && row[1] == "1" {
			foundG = true
		}
	}
	if !foundS || !foundG {
		t.Fatalf("Fig4b rows wrong:\n%s", mut)
	}
}

func TestPropsChainAlwaysHolds(t *testing.T) {
	tabs := Props(quick)
	for _, row := range tabs[0].Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("containment chain violated in row %v", row)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "long-header"}, Note: "n"}
	tab.AddRow("1", "2")
	out := tab.String()
	for _, want := range []string{"== T ==", "long-header", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:     "500ns",
		1500 * time.Nanosecond:    "1.5µs",
		2500000 * time.Nanosecond: "2.50ms",
		1500 * time.Millisecond:   "1.50s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestGrowthLabel(t *testing.T) {
	if got := growthLabel([]time.Duration{1, 2}); got != "polynomial-like" {
		t.Errorf("flat growth = %q", got)
	}
	if got := growthLabel([]time.Duration{time.Nanosecond, 100 * time.Nanosecond}); got != "exponential-like" {
		t.Errorf("steep growth = %q", got)
	}
	if got := growthLabel(nil); got != "n/a" {
		t.Errorf("no data = %q", got)
	}
}
