// Package bench is the experiment harness: it regenerates every
// figure and table of the paper as text output (DESIGN.md, §4 lists
// the experiment index) and provides the measurement helpers shared
// by cmd/prefbench and the root benchmark suite. Absolute times are
// machine-local; the reproduced artifact is the *shape* — which
// problems stay polynomial, which blow up, which families coincide.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
	"unicode/utf8"
)

// Table is a titled, aligned text table.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// stopwatch measures fn, repeating until at least minDuration has
// elapsed, and returns the per-iteration time.
func stopwatch(fn func()) time.Duration {
	const minDuration = 2 * time.Millisecond
	// Warm up once.
	fn()
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= minDuration || iters > 1<<20 {
			return elapsed / time.Duration(iters)
		}
		iters *= 2
	}
}

// fmtDur renders a duration compactly.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// growthLabel classifies the growth of per-step timing ratios:
// roughly constant ratios under doubling input → polynomial of that
// degree; exploding ratios → exponential.
func growthLabel(times []time.Duration) string {
	if len(times) < 2 {
		return "n/a"
	}
	last := float64(times[len(times)-1].Nanoseconds()+1) / float64(times[len(times)-2].Nanoseconds()+1)
	if last > 8 {
		return "exponential-like"
	}
	return "polynomial-like"
}

// stepRatios renders the time ratio between consecutive measurements,
// e.g. "×1.9 ×2.1 ×2.0". For linear step sizes a constant ratio > 1
// is the signature of exponential growth; a ratio drifting toward 1
// indicates polynomial growth.
func stepRatios(times []time.Duration) string {
	if len(times) < 2 {
		return "n/a"
	}
	var b strings.Builder
	for i := 1; i < len(times); i++ {
		if i > 1 {
			b.WriteByte(' ')
		}
		r := float64(times[i].Nanoseconds()+1) / float64(times[i-1].Nanoseconds()+1)
		fmt.Fprintf(&b, "×%.1f", r)
	}
	return b.String()
}
