package bench

import (
	"testing"

	"prefcqa/internal/core"
	"prefcqa/internal/cqa"
	"prefcqa/internal/fd"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// VerifyWorkload builds an n-tuple multi-component instance — n/2
// conflict clusters R(k, 0) / R(k, 1) under the FD K → V, all
// oriented toward the 0-tuple except the last three (so the Global
// family has exactly 2³ preferred repairs) — and returns a benchmark
// whose op is one quantified closed certain-answer check:
//
//	EXISTS v . R(7, v) AND v < 2
//
// The query's support is the K = 7 posting: two tuples, one oriented
// component. mode "pruned" answers through cqa.Evaluate — the support
// analysis prunes the repair walk to that single component and the
// compiled query re-runs per repair by swapping visibility subsets —
// while mode "full" answers through cqa.EvaluateFull, the pinned
// ablation baseline that enumerates preferred repairs of the whole
// database (n/2 components lifted per repair). Both must agree on
// CertainlyTrue: cluster 7 is oriented, so R(7, 0) is in every
// preferred repair. The source of the BENCH_9.json verify_query rows.
func VerifyWorkload(n int, mode string) func(b *testing.B) {
	return func(b *testing.B) {
		schema := relation.MustSchema("R", relation.IntAttr("K"), relation.IntAttr("V"))
		inst := relation.NewInstance(schema)
		m := n / 2
		ids := make([][2]relation.TupleID, m)
		for k := 0; k < m; k++ {
			ids[k][0] = inst.MustInsert(k, 0)
			ids[k][1] = inst.MustInsert(k, 1)
		}
		rel, err := cqa.NewRelation(inst, fd.MustParseSet(schema, "K -> V"))
		if err != nil {
			b.Fatal(err)
		}
		// Orient every cluster toward its 0-tuple except the last
		// three: those stay undetermined, giving 2^3 = 8 preferred
		// Global repairs — all agreeing on the queried cluster.
		for k := 0; k < m-3; k++ {
			rel.Pri.MustAdd(ids[k][0], ids[k][1])
		}
		in, err := cqa.NewInput(rel)
		if err != nil {
			b.Fatal(err)
		}
		stats := &cqa.EvalStats{}
		in = in.WithEngine(core.NewEngine()).WithStats(stats)
		q := query.MustParse("EXISTS v . R(7, v) AND v < 2")
		check := func() {
			var ans cqa.Answer
			var err error
			switch mode {
			case "pruned":
				ans, err = cqa.Evaluate(core.Global, in, q)
			case "full":
				ans, err = cqa.EvaluateFull(core.Global, in, q)
			default:
				b.Fatalf("unknown verify workload mode %q", mode)
			}
			if err != nil {
				b.Fatal(err)
			}
			if ans != cqa.CertainlyTrue {
				b.Fatalf("%s answer = %v, want true", mode, ans)
			}
		}
		// Warmup: pin the differential (both paths agree) and that the
		// intended path fired.
		check()
		snap := stats.Snapshot()
		switch mode {
		case "pruned":
			if snap.ClosedPruned == 0 || snap.ClosedFull != 0 {
				b.Fatalf("pruned verification did not fire: %+v", snap)
			}
			if full, err := cqa.EvaluateFull(core.Global, in, q); err != nil || full != cqa.CertainlyTrue {
				b.Fatalf("full differential: ans=%v err=%v", full, err)
			}
		case "full":
			if snap.ClosedFull == 0 {
				b.Fatalf("full enumeration did not fire: %+v", snap)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			check()
		}
	}
}
