package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"prefcqa"
	"prefcqa/client"
	"prefcqa/internal/server"
)

// replCluster is one primary plus n followers, each a real prefserve
// on its own loopback socket and data directory.
type replCluster struct {
	dir        string
	primary    *server.Server
	primaryURL string
	followers  []*server.Server
	urls       []string // follower base URLs
	shutdown   []func()
}

func (rc *replCluster) Close() {
	for i := len(rc.shutdown) - 1; i >= 0; i-- {
		rc.shutdown[i]()
	}
	os.RemoveAll(rc.dir)
}

// startReplServer boots one server on a loopback socket and returns
// its base URL plus a teardown.
func startReplServer(srv *server.Server) (string, func(), error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	done := make(chan struct{})
	go func() { srv.Serve(l); close(done) }() //nolint:errcheck // ErrServerClosed on shutdown
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best effort teardown
		<-done
	}
	return "http://" + l.Addr().String(), stop, nil
}

// newReplCluster boots a durable primary and n followers replicating
// from it, with tight discovery/heartbeat intervals so the fleet
// converges in milliseconds instead of the production defaults.
func newReplCluster(n int) (*replCluster, error) {
	dir, err := os.MkdirTemp("", "prefbench-repl-*")
	if err != nil {
		return nil, err
	}
	rc := &replCluster{dir: dir}
	opts := func(sub string) server.Options {
		return server.Options{
			MaxInflight:       256,
			DataDir:           filepath.Join(dir, sub),
			DBOptions:         []prefcqa.Option{prefcqa.WithSyncPolicy(prefcqa.SyncGroup)},
			DiscoverInterval:  50 * time.Millisecond,
			HeartbeatInterval: 100 * time.Millisecond,
		}
	}
	rc.primary = server.New(opts("primary"))
	url, stop, err := startReplServer(rc.primary)
	if err != nil {
		rc.Close()
		return nil, err
	}
	rc.primaryURL = url
	rc.shutdown = append(rc.shutdown, stop)
	for i := 0; i < n; i++ {
		o := opts(fmt.Sprintf("follower%d", i))
		o.FollowURL = url
		f := server.New(o)
		furl, fstop, err := startReplServer(f)
		if err != nil {
			rc.Close()
			return nil, err
		}
		if err := f.StartReplication(); err != nil {
			fstop()
			rc.Close()
			return nil, err
		}
		rc.followers = append(rc.followers, f)
		rc.urls = append(rc.urls, furl)
		rc.shutdown = append(rc.shutdown, fstop)
	}
	return rc, nil
}

// ReplicationWorkload measures read scale-out across WAL-shipping
// followers: a durable primary preloaded with m two-tuple conflict
// clusters, `followers` follower servers tailing its log, and
// `clients` concurrent readers issuing `reqs` ground G-Rep queries
// through a follower-aware ReplicaSet — every read carries the
// preload's write-version as min_version, so a follower answers only
// at (or past) that watermark.
//
// The metric is named repl_read_scaleout/f<followers>; Extra reports
// sustained qps, p50/p99 read latency, and lag_p99_us: the p99 time a
// fresh primary write takes to become readable through a follower
// (acked write → min_version read returning), measured by probe
// writes interleaved at the end.
func ReplicationWorkload(m, followers, clients, reqs int) (Metric, error) {
	name := fmt.Sprintf("repl_read_scaleout/f%d", followers)
	rc, err := newReplCluster(followers)
	if err != nil {
		return Metric{}, err
	}
	defer rc.Close()

	db, err := rc.primary.CreateDB("bench")
	if err != nil {
		return Metric{}, err
	}
	rel, err := db.CreateRelation("R", prefcqa.IntAttr("K"), prefcqa.IntAttr("V"))
	if err != nil {
		return Metric{}, err
	}
	if err := rel.AddFD("K -> V"); err != nil {
		return Metric{}, err
	}
	for i := 0; i < m; i++ {
		anchor := rel.MustInsert(i, 0)
		loser := rel.MustInsert(i, 1)
		if err := rel.Prefer(anchor, loser); err != nil {
			return Metric{}, err
		}
	}
	loaded := db.WriteVersion()

	rs := client.NewReplicaSet(rc.primaryURL, rc.urls)
	ctx := context.Background()
	// Converge the fleet: one min_version read per follower parks until
	// its watermark covers the preload (also warming each follower's
	// snapshot cache).
	for _, u := range rc.urls {
		fc := client.New(u)
		waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		_, err := fc.CountRepairs(waitCtx, "bench", prefcqa.Global, "R", client.MinVersion(loaded))
		cancel()
		if err != nil {
			return Metric{}, fmt.Errorf("follower %s never converged: %w", u, err)
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     = make([]time.Duration, 0, reqs)
		firstErr error
	)
	perClient := reqs / clients
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7 + cl)))
			local := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				k := rng.Intn(m)
				t0 := time.Now()
				a, err := rs.Query(ctx, "bench", prefcqa.Global, fmt.Sprintf("R(%d, 0)", k), client.MinVersion(loaded))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if a != prefcqa.True {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("follower answered R(%d, 0) = %v, want true", k, a)
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return Metric{}, fmt.Errorf("%s: %w", name, firstErr)
	}

	// Replication lag: write on the primary, then time how long a
	// min_version read through a follower takes to return — the
	// visible catch-up cost after an acked write.
	probes := 20
	if probes > m {
		probes = m
	}
	lags := make([]time.Duration, 0, probes*max(1, followers))
	pc := client.New(rc.primaryURL)
	for p := 0; p < probes; p++ {
		tup, _ := prefcqa.MakeTuple(m+p, 0)
		_, v, err := pc.Insert(ctx, "bench", "R", tup)
		if err != nil {
			return Metric{}, fmt.Errorf("%s: lag probe write: %w", name, err)
		}
		for _, u := range rc.urls {
			fc := client.New(u)
			t0 := time.Now()
			waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
			_, err := fc.Query(waitCtx, "bench", prefcqa.Global, fmt.Sprintf("R(%d, 0)", m+p), client.MinVersion(v))
			cancel()
			if err != nil {
				return Metric{}, fmt.Errorf("%s: lag probe read via %s: %w", name, u, err)
			}
			lags = append(lags, time.Since(t0))
		}
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	pct := func(ds []time.Duration, q float64) time.Duration {
		if len(ds) == 0 {
			return 0
		}
		i := int(q * float64(len(ds)))
		if i >= len(ds) {
			i = len(ds) - 1
		}
		return ds[i]
	}
	var total time.Duration
	for _, d := range lats {
		total += d
	}
	return Metric{
		Name:       name,
		Iterations: len(lats),
		NsPerOp:    float64(total.Nanoseconds()) / float64(len(lats)),
		Extra: map[string]float64{
			"qps":        float64(len(lats)) / elapsed.Seconds(),
			"p50_us":     float64(pct(lats, 0.50).Microseconds()),
			"p99_us":     float64(pct(lats, 0.99).Microseconds()),
			"lag_p99_us": float64(pct(lags, 0.99).Microseconds()),
			"followers":  float64(followers),
			"clients":    float64(clients),
		},
	}, nil
}
