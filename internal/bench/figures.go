package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"prefcqa/internal/axioms"
	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/conflict"
	"prefcqa/internal/core"
	"prefcqa/internal/cqa"
	"prefcqa/internal/denial"
	"prefcqa/internal/priority"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
	"prefcqa/internal/repair"
	"prefcqa/internal/workload"
)

// Options size the experiments. Quick keeps everything test-friendly;
// the full runs are used by cmd/prefbench and EXPERIMENTS.md.
type Options struct {
	Quick bool
	// Workloads, when non-empty, filters the JSON suite: only
	// workloads whose metric names contain one of the comma-separated
	// substrings run (`prefbench -workloads verify_query`), so a
	// single workload can be profiled without paying for the suite.
	Workloads string
}

// want reports whether a metric name passes the Workloads filter.
func (o Options) want(name string) bool {
	if o.Workloads == "" {
		return true
	}
	for _, part := range strings.Split(o.Workloads, ",") {
		if part = strings.TrimSpace(part); part != "" && strings.Contains(name, part) {
			return true
		}
	}
	return false
}

func (o Options) pick(quick, full []int) []int {
	if o.Quick {
		return quick
	}
	return full
}

// Fig1 reproduces Figure 1 and Example 4/5: the conflict graph of
// r_n, exactly rendered for n = 4, plus construction scaling and the
// 2^n repair count (computed componentwise, never enumerated).
func Fig1(o Options) []*Table {
	exact := workload.Pairs(4)
	shape := &Table{
		Title:  "Figure 1 — conflict graph of r_4 (Example 4)",
		Header: []string{"tuple", "conflicts with"},
	}
	g := exact.Graph()
	for t := 0; t < g.Len(); t++ {
		var ns []string
		for _, u := range g.Neighbors(t) {
			ns = append(ns, exact.Inst.Tuple(int(u)).String())
		}
		shape.AddRow(exact.Inst.Tuple(t).String(), fmt.Sprint(ns))
	}
	shape.Note = "paper: n disjoint edges {(i,0)-(i,1)}; repairs = all of {0,1}^n"

	scale := &Table{
		Title:  "Figure 1 scaling — conflict graph construction on Pairs(n)",
		Header: []string{"n", "tuples", "edges", "components", "build", "repairs"},
	}
	var times []time.Duration
	for _, n := range o.pick([]int{128, 256, 512}, []int{512, 1024, 2048, 4096, 8192}) {
		sc := workload.Pairs(n)
		d := stopwatch(func() {
			conflict.MustBuild(sc.Inst, sc.FDs)
		})
		times = append(times, d)
		count := "overflow (>2^62)"
		if c, err := repair.Count(sc.Graph()); err == nil {
			count = fmt.Sprint(c)
		}
		scale.AddRow(fmt.Sprint(n), fmt.Sprint(2*n), fmt.Sprint(sc.Graph().NumEdges()),
			fmt.Sprint(len(sc.Graph().Components())), fmtDur(d), count)
	}
	scale.Note = "expected shape: near-linear build (" + growthLabel(times) + " measured)"
	return []*Table{shape, scale}
}

// familyRow lists each family's preferred repairs on a scenario.
func familyRow(sc *workload.Scenario, tab *Table) {
	for _, f := range core.Families {
		var reps []string
		core.Enumerate(f, sc.Pri, func(s *bitset.Set) bool { //nolint:errcheck
			reps = append(reps, renderRepair(sc.Inst, s))
			return true
		})
		tab.AddRow(f.String(), fmt.Sprint(len(reps)), fmt.Sprint(reps))
	}
}

func renderRepair(inst *relation.Instance, s *bitset.Set) string {
	out := "{"
	first := true
	s.Range(func(id int) bool {
		if !first {
			out += " "
		}
		first = false
		out += inst.Tuple(id).String()
		return true
	})
	return out + "}"
}

// Fig2 reproduces Figure 2 / Example 7: L-Rep uses the priority
// effectively with one key dependency.
func Fig2(Options) []*Table {
	sc := workload.Example7()
	tab := &Table{
		Title:  "Figure 2 — Example 7: one key, priority ta≻tb, ta≻tc",
		Header: []string{"family", "count", "preferred repairs"},
		Note:   "paper: only r1 = {ta} is locally preferred — all families below Rep agree",
	}
	familyRow(sc, tab)
	return []*Table{tab}
}

// Fig3 reproduces Figure 3 / Example 8: non-categoricity of L-Rep;
// S-Rep repairs it.
func Fig3(Options) []*Table {
	sc := workload.Example8()
	tab := &Table{
		Title:  "Figure 3 — Example 8: duplicates under A->B, total priority tc≻ta, tc≻tb",
		Header: []string{"family", "count", "preferred repairs"},
		Note:   "paper: both repairs locally optimal (P4 fails for L); S selects {tc}",
	}
	familyRow(sc, tab)
	return []*Table{tab}
}

// Fig4 reproduces Figure 4 / Example 9, twice: the instance exactly
// as printed (where the formal definitions make the total chain
// priority categorical for S, G and C — a documented deviation), and
// the mutual-conflict reconstruction that realizes the paper's
// intended claims (S-Rep non-categorical, G-Rep and C-Rep selecting
// r1).
func Fig4(Options) []*Table {
	lit := workload.Example9()
	t1 := &Table{
		Title:  "Figure 4a — Example 9 as printed (path P5, total chain priority)",
		Header: []string{"family", "count", "preferred repairs"},
		Note: "DEVIATION: the printed instance has 4 repairs (paper lists 2) and " +
			"S-Rep is categorical here; see Figure 4b and EXPERIMENTS.md",
	}
	familyRow(lit, t1)

	mut := workload.Example9Mutual()
	t2 := &Table{
		Title:  "Figure 4b — Example 9 reconstructed (K_{2,3} mutual conflicts, partial chain priority)",
		Header: []string{"family", "count", "preferred repairs"},
		Note:   "paper's intent: S-Rep keeps both sides; G-Rep and C-Rep keep r1 = {t0,t2,t4}",
	}
	familyRow(mut, t2)
	return []*Table{t1, t2}
}

// Props reproduces the §3 property claims: the containment chain
// C ⊆ G ⊆ S ⊆ L ⊆ Rep and the P1-P4 axiom profile per family.
func Props(o Options) []*Table {
	rng := rand.New(rand.NewSource(7))
	iters := 20
	if o.Quick {
		iters = 6
	}
	counts := &Table{
		Title:  "§3 containment chain C ⊆ G ⊆ S ⊆ L ⊆ Rep (random two-FD instances)",
		Header: []string{"scenario", "|Rep|", "|L|", "|S|", "|G|", "|C|", "chain holds"},
	}
	for i := 0; i < iters; i++ {
		sc := workload.Random(rng, 8, 3, 0.5)
		sizes := map[core.Family]map[string]bool{}
		for _, f := range core.Families {
			set := map[string]bool{}
			for _, r := range core.All(f, sc.Pri) {
				set[r.Key()] = true
			}
			sizes[f] = set
		}
		holds := subset(sizes[core.Common], sizes[core.Global]) &&
			subset(sizes[core.Global], sizes[core.SemiGlobal]) &&
			subset(sizes[core.SemiGlobal], sizes[core.Local]) &&
			subset(sizes[core.Local], sizes[core.Rep])
		counts.AddRow(fmt.Sprintf("random#%d", i),
			fmt.Sprint(len(sizes[core.Rep])), fmt.Sprint(len(sizes[core.Local])),
			fmt.Sprint(len(sizes[core.SemiGlobal])), fmt.Sprint(len(sizes[core.Global])),
			fmt.Sprint(len(sizes[core.Common])), fmt.Sprint(holds))
	}

	ax := &Table{
		Title:  "§3 axioms P1-P4 per family (probed on Example 8, Example 9b and random instances)",
		Header: []string{"family", "P1", "P2", "P3", "P4"},
		Note: "paper: L,S satisfy P1-P3; G satisfies P1-P4; C satisfies P1,P4. " +
			"Deviation: S also probes categorical under total priorities (see EXPERIMENTS.md)",
	}
	scs := []*workload.Scenario{workload.Example8(), workload.Example9Mutual(), workload.Random(rng, 8, 3, 0.4)}
	for _, f := range []core.Family{core.Local, core.SemiGlobal, core.Global, core.Common} {
		worst := axioms.Report{}
		for i, sc := range scs {
			rep := axioms.Check(axioms.FromCore(f), sc.Pri, axioms.Options{Rng: rng})
			if i == 0 {
				worst = rep
			} else {
				worst = mergeReports(worst, rep)
			}
		}
		ax.AddRow(f.String(), worst.P1.String(), worst.P2.String(), worst.P3.String(), worst.P4.String())
	}
	return []*Table{counts, ax}
}

func mergeReports(a, b axioms.Report) axioms.Report {
	m := func(x, y axioms.Verdict) axioms.Verdict {
		if x == axioms.Violated || y == axioms.Violated {
			return axioms.Violated
		}
		if x == axioms.Holds || y == axioms.Holds {
			return axioms.Holds
		}
		return axioms.NotApplicable
	}
	return axioms.Report{P1: m(a.P1, b.P1), P2: m(a.P2, b.P2), P3: m(a.P3, b.P3), P4: m(a.P4, b.P4)}
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// CleanExp reproduces Algorithm 1 / Proposition 1: cleaning times and
// choice-order independence under total priorities, plus the naive
// baseline's information loss under partial priorities.
func CleanExp(o Options) []*Table {
	rng := rand.New(rand.NewSource(13))
	timing := &Table{
		Title:  "Algorithm 1 — cleaning time on Clusters(m,3) with total priority",
		Header: []string{"clusters", "tuples", "clean", "unique over 10 orders"},
	}
	var times []time.Duration
	for _, m := range o.pick([]int{50, 100}, []int{100, 200, 400, 800, 1600}) {
		sc := workload.Clusters(m, 3)
		total := sc.Pri.TotalExtension(rng)
		d := stopwatch(func() { clean.Deterministic(total) })
		times = append(times, d)
		want := clean.Deterministic(total)
		unique := true
		for trial := 0; trial < 10; trial++ {
			got, err := clean.Clean(total, func(c *bitset.Set) int {
				elems := c.Slice()
				return elems[rng.Intn(len(elems))]
			})
			if err != nil || !got.Equal(want) {
				unique = false
			}
		}
		timing.AddRow(fmt.Sprint(m), fmt.Sprint(sc.Inst.Len()), fmtDur(d), fmt.Sprint(unique))
	}
	timing.Note = "Prop. 1: result independent of choices; doubling ratios: " + stepRatios(times)

	loss := &Table{
		Title:  "§1/§5 — naive cleaning loses information (Example 9b, priority on first edge only)",
		Header: []string{"method", "tuples kept", "is repair (maximal)"},
	}
	sc := workload.Bipartite(5)
	sc.Pri.MustAdd(0, 1)
	naive := clean.Naive(sc.Pri)
	alg1 := clean.Deterministic(sc.Pri)
	g := sc.Graph()
	loss.AddRow("naive (drop unresolved)", fmt.Sprint(naive.Len()), fmt.Sprint(g.IsMaximalIndependent(naive)))
	loss.AddRow("Algorithm 1", fmt.Sprint(alg1.Len()), fmt.Sprint(g.IsMaximalIndependent(alg1)))
	loss.Note = "the naive cleaner returns a consistent but non-maximal set — disjunctive information lost"
	return []*Table{timing, loss}
}

// Fig5RepairCheck reproduces the "repair check" column of Figure 5:
// L, S and C checking stays polynomial while G checking needs
// certificate search — exponential on a single growing component
// (Chain(n), whose maximal independent sets grow like Fibonacci).
func Fig5RepairCheck(o Options) []*Table {
	perFamily := &Table{
		Title:  "Figure 5 (repair check) — time to check one repair, Chain(n)",
		Header: []string{"n", "Rep", "L-Rep", "S-Rep", "G-Rep", "C-Rep"},
		Note: "paper: Rep/L/S/C PTIME; G co-NP-complete. Shape: first four columns " +
			"grow polynomially, G-Rep explodes with the component's repair count",
	}
	var gTimes []time.Duration
	for _, n := range o.pick([]int{8, 12, 16}, []int{8, 12, 16, 20, 24, 28}) {
		sc := workload.Chain(n)
		// The checked repair: Algorithm 1's output (member of every
		// family).
		rp := clean.Deterministic(sc.Pri)
		row := []string{fmt.Sprint(n)}
		for _, f := range core.Families {
			d := stopwatch(func() { core.Check(f, sc.Pri, rp) })
			if f == core.Global {
				gTimes = append(gTimes, d)
			}
			row = append(row, fmtDur(d))
		}
		perFamily.AddRow(row...)
	}
	perFamily.Note += "; G step ratios (n += 4): " + stepRatios(gTimes)
	return []*Table{perFamily}
}

// Fig5CQA reproduces the "consistent answers" columns of Figure 5.
func Fig5CQA(o Options) []*Table {
	// (a) Rep on ground quantifier-free queries: PTIME via the
	// witness-cover algorithm vs naive repair enumeration.
	ground := &Table{
		Title:  "Figure 5 (CQA, {∀,∃}-free) — plain Rep on Pairs(n), ground query",
		Header: []string{"n", "repairs", "PTIME algorithm", "naive enumeration"},
		Note:   "paper row 1: {∀,∃}-free CQA in PTIME; the naive column is the co-NP-style baseline",
	}
	groundSizes := o.pick([]int{6, 10, 14}, []int{8, 12, 16, 20})
	var fastTimes []time.Duration
	for _, n := range groundSizes {
		sc := workload.Pairs(n)
		in := inputOf(sc)
		// Certainly-true ground query touching every component: worst
		// case for the naive evaluator (no early exit).
		q := groundOrQuery(n)
		fast := stopwatch(func() {
			if _, err := cqa.GroundQFEvaluate(in, q); err != nil {
				panic(err)
			}
		})
		fastTimes = append(fastTimes, fast)
		naive := stopwatch(func() {
			if _, err := cqa.EvaluateFull(core.Rep, in, q); err != nil {
				panic(err)
			}
		})
		count := "2^" + fmt.Sprint(n)
		ground.AddRow(fmt.Sprint(n), count, fmtDur(fast), fmtDur(naive))
	}
	ground.Note += "; PTIME column growth: " + growthLabel(fastTimes)

	// (b) conjunctive (∃) queries over Rep: exponential enumeration.
	conj := &Table{
		Title:  "Figure 5 (CQA, conjunctive) — plain Rep on Pairs(n), EXISTS query",
		Header: []string{"n", "repairs", "time"},
		Note:   "paper row 1: conjunctive CQA co-NP-complete; certain-true query forces full enumeration",
	}
	var conjTimes []time.Duration
	for _, n := range o.pick([]int{6, 8, 10}, []int{8, 10, 12, 14, 16}) {
		sc := workload.Pairs(n)
		in := inputOf(sc)
		q := query.MustParse("EXISTS x, y . R(x, y)")
		d := stopwatch(func() {
			if _, err := cqa.Evaluate(core.Rep, in, q); err != nil {
				panic(err)
			}
		})
		conjTimes = append(conjTimes, d)
		conj.AddRow(fmt.Sprint(n), "2^"+fmt.Sprint(n), fmtDur(d))
	}
	conj.Note += "; step ratios (n += 2, expect ×4 for 2^n): " + stepRatios(conjTimes)

	// (c) preferred families: CQA cost against priority density —
	// preferences narrow the preferred-repair set and collapse the
	// exponential.
	density := &Table{
		Title:  "Figure 5 (preferred CQA) — L/S/G/C on Pairs(12), EXISTS query vs priority density",
		Header: []string{"density", "|L|", "|S|", "|G|", "|C|", "L", "S", "G", "C"},
		Note:   "paper rows 2-5: co-NP/Π₂ᵖ-complete in the worst case (density 0 = all repairs); priorities shrink the search",
	}
	n := 12
	if o.Quick {
		n = 8
	}
	rng := rand.New(rand.NewSource(3))
	for _, dens := range []float64{0, 0.5, 1} {
		sc := workload.Pairs(n)
		sc.Pri = priorityRandom(sc, dens, rng)
		in := inputOf(sc)
		q := query.MustParse("EXISTS x, y . R(x, y)")
		row := []string{fmt.Sprintf("%.1f", dens)}
		for _, f := range []core.Family{core.Local, core.SemiGlobal, core.Global, core.Common} {
			c, err := core.Count(f, sc.Pri)
			if err != nil {
				row = append(row, "overflow")
			} else {
				row = append(row, fmt.Sprint(c))
			}
		}
		for _, f := range []core.Family{core.Local, core.SemiGlobal, core.Global, core.Common} {
			d := stopwatch(func() {
				if _, err := cqa.Evaluate(f, in, q); err != nil {
					panic(err)
				}
			})
			row = append(row, fmtDur(d))
		}
		density.AddRow(row...)
	}

	// (d) G-Rep's extra level: computing the per-component G choices
	// performs pairwise ≪ comparisons over the component's repairs —
	// quadratic in the certificate count where Rep enumeration is
	// linear in it.
	gRow := &Table{
		Title:  "Figure 5 (G-Rep CQA) — choice computation on one Chain(n) component",
		Header: []string{"n", "component repairs", "Rep enumerate", "G-Rep choices"},
		Note:   "paper: G-CQA is Π₂ᵖ-complete — one level above co-NP; the checker multiplies the certificate count",
	}
	var gcTimes []time.Duration
	for _, n := range o.pick([]int{8, 12}, []int{8, 12, 16, 20}) {
		sc := workload.Chain(n)
		// Sparse priority: orient only the first edge, leaving the
		// family large.
		sparse := priorityFirstEdge(sc)
		comp := sc.Graph().Components()[0]
		cnt := repair.CountComponent(sc.Graph(), comp)
		dRep := stopwatch(func() { repair.CountComponent(sc.Graph(), comp) })
		dG := stopwatch(func() { core.ChoicesForComponent(core.Global, sparse, comp) })
		gcTimes = append(gcTimes, dG)
		gRow.AddRow(fmt.Sprint(n), fmt.Sprint(cnt), fmtDur(dRep), fmtDur(dG))
	}
	gRow.Note += "; G step ratios (n += 4): " + stepRatios(gcTimes)
	return []*Table{ground, conj, density, gRow}
}

// DenialExp exercises the §6 future-work extension: hypergraph
// construction and ground CQA under a ternary denial constraint.
func DenialExp(o Options) []*Table {
	tab := &Table{
		Title:  "§6 extension — denial constraints, conflict hypergraph on R(A,B)",
		Header: []string{"tuples", "hyperedges", "repairs", "build", "ground CQA"},
		Note:   "constraint: no three tuples share A with increasing B (3-ary hyperedges)",
	}
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	cons := denial.MustParse(schema, `R(x1,y1) AND R(x2,y2) AND R(x3,y3)
		AND x1 = x2 AND x2 = x3 AND y1 < y2 AND y2 < y3`)
	for _, groups := range o.pick([]int{3, 6}, []int{4, 8, 12, 16}) {
		inst := relation.NewInstance(schema)
		for gid := 0; gid < groups; gid++ {
			for j := 0; j < 3; j++ {
				inst.MustInsert(gid, j)
			}
		}
		var h *denial.Hypergraph
		build := stopwatch(func() {
			var err error
			h, err = denial.Build(inst, []denial.Constraint{cons})
			if err != nil {
				panic(err)
			}
		})
		q := query.MustParse("R(0,0) OR R(0,1) OR R(0,2)")
		cq := stopwatch(func() {
			if _, err := denial.GroundQFCertain(h, q); err != nil {
				panic(err)
			}
		})
		count := "overflow"
		if c, err := denial.Count(h); err == nil {
			count = fmt.Sprint(c)
		}
		tab.AddRow(fmt.Sprint(inst.Len()), fmt.Sprint(h.NumEdges()),
			count, fmtDur(build), fmtDur(cq))
	}
	return []*Table{tab}
}

// AblationPruning measures the relevant-component pruning of ground
// CQA (DESIGN.md ablation): with pruning the cost depends on the
// touched components only.
func AblationPruning(o Options) []*Table {
	tab := &Table{
		Title:  "Ablation — ground-query component pruning on Pairs(n)",
		Header: []string{"n", "pruned", "full enumeration"},
		Note:   "query touches one component; pruned evaluation is constant-ish, full pays 2^n",
	}
	for _, n := range o.pick([]int{8, 12}, []int{8, 12, 16, 20}) {
		sc := workload.Pairs(n)
		in := inputOf(sc)
		q := query.MustParse("R(0,0) OR R(0,1)")
		fast := stopwatch(func() {
			if _, err := cqa.Evaluate(core.Rep, in, q); err != nil {
				panic(err)
			}
		})
		slow := stopwatch(func() {
			if _, err := cqa.EvaluateFull(core.Rep, in, q); err != nil {
				panic(err)
			}
		})
		tab.AddRow(fmt.Sprint(n), fmtDur(fast), fmtDur(slow))
	}
	return []*Table{tab}
}

// helpers

func inputOf(sc *workload.Scenario) cqa.Input {
	rel := &cqa.Relation{Inst: sc.Inst, FDs: sc.FDs, Pri: sc.Pri}
	in, err := cqa.NewInput(rel)
	if err != nil {
		panic(err)
	}
	return in
}

func priorityRandom(sc *workload.Scenario, density float64, rng *rand.Rand) *priority.Priority {
	return priority.Random(sc.Graph(), density, rng)
}

// priorityFirstEdge orients only the first conflict edge.
func priorityFirstEdge(sc *workload.Scenario) *priority.Priority {
	p := priority.New(sc.Graph())
	if es := sc.Graph().Edges(); len(es) > 0 {
		p.MustAdd(es[0].A, es[0].B)
	}
	return p
}

// groundOrQuery builds the certainly-true ground query
// (R(0,0) OR R(0,1)) AND ... AND (R(n-1,0) OR R(n-1,1)) touching
// every component of Pairs(n): each repair keeps one tuple per pair.
func groundOrQuery(n int) query.Expr {
	atom := func(a, b int64) query.Expr {
		return query.Atom{Rel: "R", Args: []query.Term{
			query.Const{Value: relation.Int(a)},
			query.Const{Value: relation.Int(b)},
		}}
	}
	var q query.Expr
	for i := 0; i < n; i++ {
		or := query.Or{L: atom(int64(i), 0), R: atom(int64(i), 1)}
		if q == nil {
			q = or
		} else {
			q = query.And{L: q, R: or}
		}
	}
	return q
}
