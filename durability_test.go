package prefcqa

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// allFamilies is the full repair-family matrix every durability test
// sweeps: recovery must reproduce each family bit for bit, not just
// the raw tuples.
var allFamilies = []Family{Rep, Local, SemiGlobal, Global, Common}

// newDurDB opens a durable DB in a fresh directory with the standard
// two-column test relation, mirroring newMutDB.
func newDurDB(t *testing.T, opts ...Option) (*DB, *Relation, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	r, err := db.CreateRelation("R", IntAttr("K"), IntAttr("V"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddFD("K -> V"); err != nil {
		t.Fatal(err)
	}
	return db, r, dir
}

// cloneDir copies a WAL directory byte for byte into a fresh temp
// location: the moral equivalent of the state SIGKILL leaves behind,
// without tearing down the running DB (which a clean Close would
// flush, hiding sync bugs).
func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "clone")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// mirrorDB reconstructs an independent, purely in-memory DB holding
// the same logical state as src: same tuple IDs (including tombstone
// gaps), same dependencies, same preference pairs. It is the
// reference every recovered database is compared against.
func mirrorDB(t *testing.T, src *DB) *DB {
	t.Helper()
	m := New()
	for _, name := range src.Relations() {
		sr, _ := src.Relation(name)
		inst := sr.Instance()
		sch := inst.Schema()
		mr, err := m.CreateRelation(sch.Name(), sch.Attrs()...)
		if err != nil {
			t.Fatal(err)
		}
		dead := inst.DeadIDs()
		for id := 0; id < inst.NumIDs(); id++ {
			ids, err := mr.InsertRows([]Tuple{inst.Tuple(id)})
			if err != nil {
				t.Fatalf("mirror insert id %d: %v", id, err)
			}
			if ids[0] != id {
				t.Fatalf("mirror insert: got id %d, want %d", ids[0], id)
			}
			if dead != nil && dead.Has(id) {
				if ok, err := mr.Delete(id); err != nil || !ok {
					t.Fatalf("mirror delete %d: ok=%v err=%v", id, ok, err)
				}
			}
		}
		sr.mu.Lock()
		fds := sr.fds.All()
		prefs := append([][2]TupleID(nil), sr.prefs...)
		sr.mu.Unlock()
		for _, f := range fds {
			if err := mr.AddFD(f.String()); err != nil {
				t.Fatal(err)
			}
		}
		// mustLive=false: src.prefs may retain pairs whose tuples have
		// since died (pruning is lazy); such pairs cannot affect any
		// result, so the mirror skips them.
		if _, err := mr.preferPairs(prefs, false); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// assertSameResults compares two DBs across every repair family:
// instance state bit for bit, conflict counts, repair counts and —
// when small enough to materialize — the full ordered repair lists.
func assertSameResults(t *testing.T, label string, got, want *DB) {
	t.Helper()
	gr := got.Relations()
	wr := want.Relations()
	if len(gr) != len(wr) {
		t.Fatalf("%s: relations %v vs %v", label, gr, wr)
	}
	for _, name := range wr {
		gRel, ok := got.Relation(name)
		if !ok {
			t.Fatalf("%s: relation %q missing", label, name)
		}
		wRel, _ := want.Relation(name)
		gi, wi := gRel.Instance(), wRel.Instance()
		if gi.NumIDs() != wi.NumIDs() || gi.Len() != wi.Len() {
			t.Fatalf("%s/%s: %d IDs %d live vs %d IDs %d live",
				label, name, gi.NumIDs(), gi.Len(), wi.NumIDs(), wi.Len())
		}
		for id := 0; id < wi.NumIDs(); id++ {
			if gi.Live(id) != wi.Live(id) {
				t.Fatalf("%s/%s: liveness of id %d differs", label, name, id)
			}
			if g, w := gi.Tuple(id).String(), wi.Tuple(id).String(); g != w {
				t.Fatalf("%s/%s: tuple %d = %s, want %s", label, name, id, g, w)
			}
		}
		if g, w := gRel.FDs(), wRel.FDs(); g != w {
			t.Fatalf("%s/%s: FDs %q vs %q", label, name, g, w)
		}
		gc, err := gRel.Conflicts()
		if err != nil {
			t.Fatalf("%s/%s: conflicts: %v", label, name, err)
		}
		wc, err := wRel.Conflicts()
		if err != nil {
			t.Fatalf("%s/%s: mirror conflicts: %v", label, name, err)
		}
		if gc != wc {
			t.Fatalf("%s/%s: %d conflicts, want %d", label, name, gc, wc)
		}
		for _, f := range allFamilies {
			cg, err := got.CountRepairs(f, name)
			if err != nil {
				t.Fatalf("%s/%s/%v: count: %v", label, name, f, err)
			}
			cw, err := want.CountRepairs(f, name)
			if err != nil {
				t.Fatalf("%s/%s/%v: mirror count: %v", label, name, f, err)
			}
			if cg != cw {
				t.Fatalf("%s/%s/%v: %d repairs, want %d", label, name, f, cg, cw)
			}
			if cw <= 256 {
				rg, err := got.Repairs(f, name)
				if err != nil {
					t.Fatalf("%s/%s/%v: repairs: %v", label, name, f, err)
				}
				rw, err := want.Repairs(f, name)
				if err != nil {
					t.Fatalf("%s/%s/%v: mirror repairs: %v", label, name, f, err)
				}
				for i := range rw {
					if rg[i].String() != rw[i].String() {
						t.Fatalf("%s/%s/%v: repair %d differs:\n%s\nvs\n%s",
							label, name, f, i, rg[i], rw[i])
					}
				}
			}
		}
	}
}

// reopen closes a durable DB and opens the same directory again.
func reopen(t *testing.T, db *DB, dir string, opts ...Option) *DB {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	nd, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("reopen %s: %v", dir, err)
	}
	t.Cleanup(func() { nd.Close() })
	return nd
}

// TestDurableRoundTrip builds a small inconsistent instance with
// preferences, closes cleanly, reopens, and demands the recovered DB
// match an in-memory mirror on every family — and that the write
// version survives restart (the read-your-writes contract).
func TestDurableRoundTrip(t *testing.T) {
	db, r, dir := newDurDB(t)
	a := r.MustInsert(1, 0)
	b := r.MustInsert(1, 1)
	r.MustInsert(2, 0)
	r.MustInsert(2, 1)
	d := r.MustInsert(3, 7)
	if err := r.Prefer(a, b); err != nil {
		t.Fatal(err)
	}
	if ok, err := r.Delete(d); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	wv := db.WriteVersion()
	if wv == 0 {
		t.Fatal("write version did not advance")
	}
	mirror := mirrorDB(t, db)

	db = reopen(t, db, dir)
	if got := db.WriteVersion(); got != wv {
		t.Fatalf("recovered write version %d, want %d", got, wv)
	}
	if !db.Durable() {
		t.Fatal("reopened DB does not report durable")
	}
	assertSameResults(t, "reopen", db, mirror)

	// Mutations continue from the recovered version.
	r2, _ := db.Relation("R")
	r2.MustInsert(9, 9)
	if got := db.WriteVersion(); got != wv+1 {
		t.Fatalf("post-recovery write version %d, want %d", got, wv+1)
	}
}

// TestDurableCrashImageRecovery recovers from a byte-for-byte copy of
// the WAL directory taken while the DB is still running — the on-disk
// state a SIGKILL would leave — under fsync=always, and checks the
// copy holds everything that was acknowledged.
func TestDurableCrashImageRecovery(t *testing.T) {
	db, r, dir := newDurDB(t, WithSyncPolicy(SyncAlways))
	for i := 0; i < 20; i++ {
		r.MustInsert(int64(i%5), int64(i%3))
	}
	if err := r.Prefer(0, 1); err != nil {
		t.Fatal(err)
	}
	wv := db.WriteVersion()
	mirror := mirrorDB(t, db)

	crashed, err := Open(cloneDir(t, dir), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatalf("recover crash image: %v", err)
	}
	defer crashed.Close()
	if got := crashed.WriteVersion(); got != wv {
		t.Fatalf("crash image write version %d, want %d", got, wv)
	}
	assertSameResults(t, "crash image", crashed, mirror)
}

// TestDurableMatchesInMemoryProperty is the durability analogue of
// TestMutationStreamMatchesFreshRebuild: a random mutation stream is
// applied to a durable DB and an in-memory DB in lockstep, with
// checkpoints forced and the log reopened at random points, and the
// two must agree bit for bit across all five families throughout.
func TestDurableMatchesInMemoryProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dur, rDur, dir := newDurDB(t)
			mem, rMem := newMutDB(t)

			for step := 0; step < 25; step++ {
				inst := rDur.Instance()
				live := inst.AllIDs().Slice()
				var op mutOp
				switch k := rng.Intn(6); {
				case k <= 2 || len(live) < 2:
					op = mutOp{kind: 0, a: int64(rng.Intn(5)), b: int64(rng.Intn(4))}
				case k <= 4:
					g, err := rDur.Graph()
					if err != nil {
						t.Fatal(err)
					}
					es := g.Edges()
					if len(es) == 0 {
						op = mutOp{kind: 0, a: int64(rng.Intn(5)), b: int64(rng.Intn(4))}
					} else {
						e := es[rng.Intn(len(es))]
						op = mutOp{kind: 2, x: e.A, y: e.B}
					}
				default:
					op = mutOp{kind: 1, x: live[rng.Intn(len(live))]}
				}
				applyOp(t, rDur, op)
				applyOp(t, rMem, op)

				// The write-version streams must stay in lockstep: one
				// bump per applied mutation record on both sides.
				if dv, mv := dur.WriteVersion(), mem.WriteVersion(); dv != mv {
					t.Fatalf("seed %d step %d: write version %d (durable) vs %d (memory)",
						seed, step, dv, mv)
				}

				switch rng.Intn(5) {
				case 0: // force a checkpoint mid-stream
					if err := dur.Checkpoint(); err != nil {
						t.Fatalf("seed %d step %d: checkpoint: %v", seed, step, err)
					}
				case 1: // crash-restart from the live directory image
					crashed, err := Open(cloneDir(t, dir))
					if err != nil {
						t.Fatalf("seed %d step %d: crash image: %v", seed, step, err)
					}
					assertSameResults(t, fmt.Sprintf("seed %d step %d crash", seed, step), crashed, mem)
					crashed.Close()
				case 2: // clean close + reopen
					dur = reopen(t, dur, dir)
					rDur, _ = dur.Relation("R")
				}

				if step%5 == 4 {
					assertSameResults(t, fmt.Sprintf("seed %d step %d", seed, step), dur, mem)
				}
			}
			dur = reopen(t, dur, dir)
			assertSameResults(t, fmt.Sprintf("seed %d final", seed), dur, mem)
			if dv, mv := dur.WriteVersion(), mem.WriteVersion(); dv != mv {
				t.Fatalf("seed %d final: write version %d vs %d", seed, dv, mv)
			}
		})
	}
}

// TestPreferPartialApplyRecovery pins the repaired PR 5 wart: a
// preference batch that fails part-way must leave exactly the applied
// prefix — logged, versioned and recoverable — never an unlogged
// half-applied state. The batch here fails on its third pair (a dead
// tuple), after two pairs applied.
func TestPreferPartialApplyRecovery(t *testing.T) {
	db, r, dir := newDurDB(t, WithSyncPolicy(SyncAlways))
	a := r.MustInsert(1, 0)
	b := r.MustInsert(1, 1)
	c := r.MustInsert(2, 0)
	d := r.MustInsert(2, 1)
	e := r.MustInsert(3, 0)
	f := r.MustInsert(3, 1)
	if ok, err := r.Delete(f); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	before := db.WriteVersion()

	// The batch a server prefer handler would run: pair 3 references
	// the dead tuple and fails after pairs 1 and 2 applied.
	batch := [][2]TupleID{{a, b}, {c, d}, {e, f}}
	var applied int
	var batchErr error
	for _, p := range batch {
		if batchErr = r.Prefer(p[0], p[1]); batchErr != nil {
			break
		}
		applied++
	}
	if batchErr == nil || applied != 2 {
		t.Fatalf("batch applied %d pairs, err %v; want 2 with error", applied, batchErr)
	}
	// Each applied pair was logged and versioned individually.
	if got := db.WriteVersion(); got != before+2 {
		t.Fatalf("write version %d, want %d (+1 per applied pair)", got, before+2)
	}

	// Crash now: recovery must reproduce exactly the applied prefix.
	crashed, err := Open(cloneDir(t, dir))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer crashed.Close()
	if got := crashed.WriteVersion(); got != before+2 {
		t.Fatalf("recovered write version %d, want %d", got, before+2)
	}
	cr, _ := crashed.Relation("R")
	cr.mu.Lock()
	prefs := append([][2]TupleID(nil), cr.prefs...)
	cr.mu.Unlock()
	want := [][2]TupleID{{a, b}, {c, d}}
	if len(prefs) != len(want) {
		t.Fatalf("recovered prefs %v, want %v", prefs, want)
	}
	for i := range want {
		if prefs[i] != want[i] {
			t.Fatalf("recovered prefs %v, want %v", prefs, want)
		}
	}
	assertSameResults(t, "partial batch", crashed, mirrorDB(t, db))
}

// TestRecoveryScale100k replays a 100k-tuple log (checkpointing
// disabled, so recovery walks every record) and requires it to finish
// in seconds, not minutes.
func TestRecoveryScale100k(t *testing.T) {
	const n = 100_000
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, WithSyncPolicy(SyncNever), WithCheckpointBytes(-1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.CreateRelation("R", IntAttr("K"), IntAttr("V"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddFD("K -> V"); err != nil {
		t.Fatal(err)
	}
	const batch = 1000
	rows := make([]Tuple, batch)
	for lo := 0; lo < n; lo += batch {
		for i := range rows {
			tup, err := MakeTuple(int64(lo+i), int64((lo+i)%97))
			if err != nil {
				t.Fatal(err)
			}
			rows[i] = tup
		}
		if _, err := r.InsertRows(rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	db2, err := Open(dir, WithCheckpointBytes(-1))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer db2.Close()
	elapsed := time.Since(start)
	r2, _ := db2.Relation("R")
	if got := r2.Instance().Len(); got != n {
		t.Fatalf("recovered %d tuples, want %d", got, n)
	}
	t.Logf("recovered %d tuples in %v", n, elapsed)
	if elapsed > 30*time.Second {
		t.Fatalf("recovery took %v, want seconds", elapsed)
	}
}
