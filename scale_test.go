// Large-instance scale tests and benchmarks for the sparse (CSR)
// conflict representation and the component-local evaluation path.
//
// The paper's tractability story assumes sparse conflict graphs with
// small components; these tests pin the implementation to it: a
// 100k-tuple instance with ~50k conflicts must build its graph and
// priority in O(n+m) memory (single-digit MB, where the former dense
// representation — three n-bit sets per vertex across graph and
// priority, 3n²/8 bytes — measured ~950 MB at 50k tuples and grows
// quadratically to ~3.8 GB here), and every family's tractable
// counting path must complete within a tight budget.
package prefcqa

import (
	"runtime"
	"testing"
	"time"

	"prefcqa/internal/conflict"
	"prefcqa/internal/core"
	"prefcqa/internal/priority"
	"prefcqa/internal/relation"
	"prefcqa/internal/repair"
	"prefcqa/internal/workload"
)

const (
	scaleClusters = 50_000 // clusters of 2 → 100k tuples, 50k conflicts
	scaleMemLimit = 100 << 20
	scaleTimeout  = 2 * time.Minute
)

// scaleScenario returns the 100k-tuple / 50k-conflict workload: 50k
// independent key-violation pairs.
func scaleScenario() *workload.Scenario { return workload.Clusters(scaleClusters, 2) }

// retainedAfter runs fn and returns the retained heap growth it
// caused, measured across forced collections.
func retainedAfter(fn func()) int64 {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return int64(after.HeapAlloc) - int64(before.HeapAlloc)
}

// TestScale100kBuildMemory asserts the headline memory bound: graph +
// priority construction over 100k tuples / 50k conflicts retains well
// under 100 MB. With the former dense n-bit-per-vertex sets this
// instance needed ~3.8 GB (quadratic in n; ~950 MB measured at 50k
// tuples).
func TestScale100kBuildMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test: skipped with -short")
	}
	start := time.Now()
	sc := scaleScenario()
	var g *conflict.Graph
	var p *priority.Priority
	retained := retainedAfter(func() {
		g = conflict.MustBuild(sc.Inst, sc.FDs)
		g.Components() // include the component index in the bound
		p = priority.FromRanks(g, func(id relation.TupleID) int { return id % 2 })
	})
	if g.NumEdges() != scaleClusters {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), scaleClusters)
	}
	if p.Len() != scaleClusters {
		t.Fatalf("oriented edges = %d, want %d", p.Len(), scaleClusters)
	}
	t.Logf("retained after graph+priority build: %.1f MB (elapsed %v)",
		float64(retained)/(1<<20), time.Since(start))
	if retained > scaleMemLimit {
		t.Fatalf("graph + priority retain %.1f MB, budget %d MB",
			float64(retained)/(1<<20), scaleMemLimit>>20)
	}
	if elapsed := time.Since(start); elapsed > scaleTimeout {
		t.Fatalf("build took %v, budget %v", elapsed, scaleTimeout)
	}
	runtime.KeepAlive(g)
	runtime.KeepAlive(p)
}

// TestScale100kCountAllFamilies runs every family's tractable counting
// path over the 100k-tuple instance. With the total pair priority the
// preferred families are categorical (one repair per component →
// count 1); plain Rep doubles per component and must report overflow
// — after visiting components, not by materializing anything.
func TestScale100kCountAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test: skipped with -short")
	}
	start := time.Now()
	sc := scaleScenario()
	g := sc.Graph()
	p := priority.FromRanks(g, func(id relation.TupleID) int { return id % 2 })
	eng := core.NewEngine() // production configuration: workers + memo

	if _, err := eng.Count(core.Rep, p); err != repair.ErrOverflow {
		t.Fatalf("Rep count: err = %v, want overflow (2^%d repairs)", err, scaleClusters)
	}
	for _, f := range []core.Family{core.Local, core.SemiGlobal, core.Global, core.Common} {
		c, err := eng.Count(f, p)
		if err != nil {
			t.Fatalf("%s count: %v", f, err)
		}
		if c != 1 {
			t.Fatalf("%s count = %d, want 1 (total priority is categorical)", f, c)
		}
	}
	// The unique preferred repair is the 50k rank-0 tuples; spot-check
	// via the cleaning algorithm, which shares the winnow machinery.
	one := eng.One(core.Common, p)
	if one.Len() != scaleClusters {
		t.Fatalf("preferred repair keeps %d tuples, want %d", one.Len(), scaleClusters)
	}
	if elapsed := time.Since(start); elapsed > scaleTimeout {
		t.Fatalf("counting took %v, budget %v", elapsed, scaleTimeout)
	}
	t.Logf("all families counted in %v", time.Since(start))
}

// --- -benchmem benchmarks: the O(n+m) construction paths ---

func BenchmarkScaleConflictBuild100k(b *testing.B) {
	sc := scaleScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := conflict.Build(sc.Inst, sc.FDs)
		if err != nil || g.NumEdges() != scaleClusters {
			b.Fatalf("%v edges=%d", err, g.NumEdges())
		}
	}
}

func BenchmarkScalePriorityFromRanks100k(b *testing.B) {
	sc := scaleScenario()
	g := sc.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := priority.FromRanks(g, func(id relation.TupleID) int { return id % 2 })
		if p.Len() != scaleClusters {
			b.Fatalf("oriented = %d", p.Len())
		}
	}
}

// BenchmarkScalePriorityBulkAdd measures incremental Add (with its
// component-bounded cycle check) across every conflict edge — the
// path that was quadratic when the reachability search allocated an
// instance-sized visited set per insertion.
func BenchmarkScalePriorityBulkAdd(b *testing.B) {
	sc := scaleScenario()
	g := sc.Graph()
	edges := g.Edges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := priority.New(g)
		for _, e := range edges {
			p.MustAdd(e.A, e.B)
		}
		if p.Len() != scaleClusters {
			b.Fatalf("oriented = %d", p.Len())
		}
	}
}

// --- per-component enumeration: the allocation-free hot path ---

// BenchmarkComponentEnumerationMultiChain counts the maximal
// independent sets of every chain of the multi-chain workload: pure
// Bron–Kerbosch in local index space. Allocations per op are the
// per-enumeration arena setup only — independent of the number of
// recursion nodes (formerly O(sets × chain length) fresh bitsets).
func BenchmarkComponentEnumerationMultiChain(b *testing.B) {
	p := multiChains(8, 20)
	g := p.Graph()
	comps := g.Components()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int64
		for _, comp := range comps {
			total += repair.CountComponent(g, comp)
		}
		if total == 0 {
			b.Fatal("no repairs")
		}
	}
}

// BenchmarkComponentChoicesMultiChain measures each family's
// per-component choice computation (enumeration + optimality
// conditions) on one 20-chain component, uncached.
func BenchmarkComponentChoicesMultiChain(b *testing.B) {
	p := multiChains(1, 20)
	comp := p.Graph().Components()[0]
	for _, f := range core.Families {
		b.Run(f.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(core.ChoicesForComponent(f, p, comp)) == 0 {
					b.Fatal("no choices")
				}
			}
		})
	}
}

// BenchmarkScaleCountGlobal100k is the end-to-end headline: G-Rep
// counting over 50k two-tuple components with the memoizing engine,
// reported as repairs/sec-style throughput via ns/op.
func BenchmarkScaleCountGlobal100k(b *testing.B) {
	sc := scaleScenario()
	p := priority.FromRanks(sc.Graph(), func(id relation.TupleID) int { return id % 2 })
	eng := core.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := eng.Count(core.Global, p)
		if err != nil || c != 1 {
			b.Fatalf("count = %d, %v", c, err)
		}
	}
}
