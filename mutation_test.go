package prefcqa

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// mutOp is one recorded mutation, replayable onto a fresh DB.
type mutOp struct {
	kind int // 0 insert, 1 delete, 2 prefer
	a, b int64
	x, y TupleID
}

// applyOp applies the op to a relation; ids are deterministic, so a
// replay reproduces the exact TupleID assignment.
func applyOp(t *testing.T, r *Relation, op mutOp) {
	t.Helper()
	switch op.kind {
	case 0:
		if _, err := r.Insert(op.a, op.b); err != nil {
			t.Fatalf("insert(%d,%d): %v", op.a, op.b, err)
		}
	case 1:
		r.Delete(op.x)
	case 2:
		if err := r.Prefer(op.x, op.y); err != nil {
			t.Fatalf("prefer(%d,%d): %v", op.x, op.y, err)
		}
	}
}

func newMutDB(t *testing.T, opts ...Option) (*DB, *Relation) {
	t.Helper()
	db := New(opts...)
	r, err := db.CreateRelation("R", IntAttr("K"), IntAttr("V"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddFD("K -> V"); err != nil {
		t.Fatal(err)
	}
	return db, r
}

// repairFingerprint renders the full ordered repair list of a family.
func repairFingerprint(t *testing.T, db *DB, f Family) string {
	t.Helper()
	reps, err := db.Repairs(f, "R")
	if err != nil {
		t.Fatalf("Repairs(%v): %v", f, err)
	}
	s := ""
	for _, rp := range reps {
		s += rp.String() + "\n"
	}
	return s
}

// TestMutationStreamMatchesFreshRebuild is the end-to-end delta-
// maintenance property: random interleavings of Insert, Delete and
// Prefer, each followed by Count and full enumeration across all five
// families, must match (a) a DB replayed from scratch — whose built
// state is a fresh Build — and (b) a DB running with incremental
// maintenance disabled, bit for bit, including enumeration order.
func TestMutationStreamMatchesFreshRebuild(t *testing.T) {
	families := []Family{Rep, Local, SemiGlobal, Global, Common}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inc, rInc := newMutDB(t)
		noInc, rNo := newMutDB(t, WithIncremental(false))
		var log []mutOp

		for step := 0; step < 30; step++ {
			// Pick a mutation valid for the current state.
			var op mutOp
			inst := rInc.Instance()
			live := inst.AllIDs().Slice()
			switch k := rng.Intn(6); {
			case k <= 2 || len(live) < 2: // insert (biased: keep it growing)
				op = mutOp{kind: 0, a: int64(rng.Intn(5)), b: int64(rng.Intn(4))}
			case k <= 4: // prefer an adjacent pair if one exists, low ≻ high stays acyclic
				g, err := rInc.Graph()
				if err != nil {
					t.Fatal(err)
				}
				es := g.Edges()
				if len(es) == 0 {
					op = mutOp{kind: 0, a: int64(rng.Intn(5)), b: int64(rng.Intn(4))}
				} else {
					e := es[rng.Intn(len(es))]
					op = mutOp{kind: 2, x: e.A, y: e.B}
				}
			default: // delete
				op = mutOp{kind: 1, x: live[rng.Intn(len(live))]}
			}
			log = append(log, op)
			applyOp(t, rInc, op)
			applyOp(t, rNo, op)

			// Fresh replay: the reference build of the mutated state.
			fresh, rFresh := newMutDB(t)
			for _, o := range log {
				applyOp(t, rFresh, o)
			}

			for _, f := range families {
				ci, err := inc.CountRepairs(f, "R")
				if err != nil {
					t.Fatalf("seed %d step %d: inc count: %v", seed, step, err)
				}
				cf, err := fresh.CountRepairs(f, "R")
				if err != nil {
					t.Fatalf("seed %d step %d: fresh count: %v", seed, step, err)
				}
				cn, err := noInc.CountRepairs(f, "R")
				if err != nil {
					t.Fatalf("seed %d step %d: no-inc count: %v", seed, step, err)
				}
				if ci != cf || ci != cn {
					t.Fatalf("seed %d step %d %v: counts inc=%d fresh=%d rebuild=%d", seed, step, f, ci, cf, cn)
				}
				fi := repairFingerprint(t, inc, f)
				ff := repairFingerprint(t, fresh, f)
				fn := repairFingerprint(t, noInc, f)
				if fi != ff {
					t.Fatalf("seed %d step %d %v: incremental enumeration differs from fresh rebuild:\n%s\nvs\n%s", seed, step, f, fi, ff)
				}
				if fi != fn {
					t.Fatalf("seed %d step %d %v: incremental enumeration differs from WithIncremental(false)", seed, step, f)
				}
			}
			// Spot-check query answers on a live tuple.
			if len(live) > 0 {
				tup := rInc.Instance().Tuple(live[rng.Intn(len(live))])
				q := fmt.Sprintf("R(%s, %s)", tup[0], tup[1])
				f := families[rng.Intn(len(families))]
				ai, err := inc.Query(f, q)
				if err != nil {
					t.Fatalf("seed %d step %d: query: %v", seed, step, err)
				}
				af, err := fresh.Query(f, q)
				if err != nil {
					t.Fatalf("seed %d step %d: fresh query: %v", seed, step, err)
				}
				if ai != af {
					t.Fatalf("seed %d step %d %v %s: answer %v != fresh %v", seed, step, f, q, ai, af)
				}
			}
			// And the deterministic cleaning output.
			cli, err := inc.Clean("R")
			if err != nil {
				t.Fatal(err)
			}
			clf, err := fresh.Clean("R")
			if err != nil {
				t.Fatal(err)
			}
			if cli.String() != clf.String() {
				t.Fatalf("seed %d step %d: clean %s != fresh %s", seed, step, cli, clf)
			}
		}
	}
}

// TestDeleteBasics covers the facade Delete contract: liveness, ID
// stability, set-semantics interplay, and priority cleanup.
func TestDeleteBasics(t *testing.T) {
	_, r := newMutDB(t)
	a := r.MustInsert(1, 0)
	b := r.MustInsert(1, 1)
	c := r.MustInsert(2, 0)
	if err := r.Prefer(a, b); err != nil {
		t.Fatal(err)
	}
	if n, _ := r.Conflicts(); n != 1 {
		t.Fatalf("conflicts = %d, want 1", n)
	}
	if ok, err := r.Delete(a); err != nil || !ok {
		t.Fatalf("Delete(a) = %v, %v", ok, err)
	}
	if ok, err := r.Delete(a); err != nil || ok {
		t.Fatalf("double Delete(a) = %v, %v", ok, err)
	}
	if n, _ := r.Conflicts(); n != 0 {
		t.Fatalf("conflicts after delete = %d, want 0", n)
	}
	inst := r.Instance()
	if inst.Live(a) || !inst.Live(b) || !inst.Live(c) {
		t.Fatal("liveness after delete wrong")
	}
	if inst.Tuple(b)[1].String() != "1" {
		t.Fatal("IDs shifted after delete")
	}
	// Re-inserting the deleted tuple assigns a fresh ID and restores
	// the conflict.
	a2 := r.MustInsert(1, 0)
	if a2 == a {
		t.Fatalf("re-insert reused ID %d", a)
	}
	if n, _ := r.Conflicts(); n != 1 {
		t.Fatalf("conflicts after re-insert = %d, want 1", n)
	}
}

// TestPreferByRankIdempotent is the regression test for PreferByRank
// appending duplicate preference pairs on repeated calls.
func TestPreferByRankIdempotent(t *testing.T) {
	_, r := newMutDB(t)
	r.MustInsert(1, 0)
	r.MustInsert(1, 1)
	rank := func(id TupleID) int { return int(id) }
	if err := r.PreferByRank(rank); err != nil {
		t.Fatal(err)
	}
	first := len(r.prefs)
	if first != 1 {
		t.Fatalf("prefs after first PreferByRank = %d, want 1", first)
	}
	if err := r.PreferByRank(rank); err != nil {
		t.Fatal(err)
	}
	if len(r.prefs) != first {
		t.Fatalf("PreferByRank duplicated pairs: %d != %d", len(r.prefs), first)
	}
	// Explicit duplicate Prefer is also recorded once.
	if err := r.Prefer(0, 1); err != nil {
		t.Fatal(err)
	}
	if len(r.prefs) != first {
		t.Fatalf("duplicate Prefer recorded: %d pairs", len(r.prefs))
	}
	if c, err := r.db.CountRepairs(Global, "R"); err != nil || c != 1 {
		t.Fatalf("G-Rep count = %d, %v; want 1", c, err)
	}
}

// TestMutationAfterAddFDRebuilds checks the rebuild escape hatch:
// dependencies added after queries force a full rebuild that folds in
// every recorded preference.
func TestMutationAfterAddFDRebuilds(t *testing.T) {
	db := New()
	r, err := db.CreateRelation("R", IntAttr("A"), IntAttr("B"), IntAttr("C"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddFD("A -> B"); err != nil {
		t.Fatal(err)
	}
	a := r.MustInsert(1, 0, 0)
	b := r.MustInsert(1, 1, 0)
	if n, _ := r.Conflicts(); n != 1 {
		t.Fatalf("conflicts = %d", n)
	}
	c := r.MustInsert(2, 0, 0)
	d := r.MustInsert(2, 0, 1)
	if n, _ := r.Conflicts(); n != 1 {
		t.Fatalf("conflicts before AddFD = %d", n)
	}
	if err := r.AddFD("A -> C"); err != nil {
		t.Fatal(err)
	}
	if n, _ := r.Conflicts(); n != 2 {
		t.Fatalf("conflicts after AddFD = %d, want 2", n)
	}
	_ = a
	_ = b
	if err := r.Prefer(c, d); err != nil {
		t.Fatal(err)
	}
	cnt, err := db.CountRepairs(Common, "R")
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 2 { // {a,b} unresolved ×2, {c,d} resolved ×1
		t.Fatalf("C-Rep count = %d, want 2", cnt)
	}
}

// TestPreferByRankCallbackMayReadRelation pins that the rank callback
// runs without the relation lock: deriving rank from tuple contents
// (the natural usage) must not deadlock.
func TestPreferByRankCallbackMayReadRelation(t *testing.T) {
	db, r := newMutDB(t)
	r.MustInsert(1, 0)
	r.MustInsert(1, 1)
	done := make(chan error, 1)
	go func() {
		done <- r.PreferByRank(func(id TupleID) int {
			// Reads back through the public API, which takes r.mu.
			return int(r.Instance().Tuple(id)[1].String()[0])
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("PreferByRank deadlocked on an instance-reading rank callback")
	}
	if c, err := db.CountRepairs(Global, "R"); err != nil || c != 1 {
		t.Fatalf("count = %d, %v; want 1", c, err)
	}
}

// TestIsPreferredRepairRejectsDeletedTuples pins that sets containing
// tombstoned tuples are never certified as repairs.
func TestIsPreferredRepairRejectsDeletedTuples(t *testing.T) {
	db, r := newMutDB(t)
	a := r.MustInsert(1, 10)
	b := r.MustInsert(1, 20)
	if ok, err := db.IsPreferredRepair(Rep, "R", []TupleID{a}); err != nil || !ok {
		t.Fatalf("pre-delete {a}: %v, %v", ok, err)
	}
	r.Delete(a)
	if ok, err := db.IsPreferredRepair(Rep, "R", []TupleID{a, b}); err != nil || ok {
		t.Fatalf("{deleted, live} accepted as repair: %v, %v", ok, err)
	}
	if ok, err := db.IsPreferredRepair(Rep, "R", []TupleID{a}); err != nil || ok {
		t.Fatalf("{deleted} accepted as repair: %v, %v", ok, err)
	}
	if ok, err := db.IsPreferredRepair(Rep, "R", []TupleID{b}); err != nil || !ok {
		t.Fatalf("{live survivor} rejected: %v, %v", ok, err)
	}
}
