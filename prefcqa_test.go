package prefcqa

import (
	"strings"
	"testing"
)

// paperDB builds the running example: the integrated Mgr instance of
// Example 1 with the dependencies fd1, fd2.
func paperDB(t testing.TB) (*DB, *Relation, map[string]TupleID) {
	t.Helper()
	db := New()
	mgr, err := db.CreateRelation("Mgr",
		NameAttr("Name"), NameAttr("Dept"), IntAttr("Salary"), IntAttr("Reports"))
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]TupleID{
		"mary":   mgr.MustInsert("Mary", "R&D", 40, 3),
		"john":   mgr.MustInsert("John", "R&D", 10, 2),
		"maryIT": mgr.MustInsert("Mary", "IT", 20, 1),
		"johnPR": mgr.MustInsert("John", "PR", 30, 4),
	}
	if err := mgr.AddFD("Dept -> Name, Salary, Reports"); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddFD("Name -> Dept, Salary, Reports"); err != nil {
		t.Fatal(err)
	}
	return db, mgr, ids
}

const q1 = `EXISTS x1, y1, z1, x2, y2, z2 .
	Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 < y2`

const q2 = `EXISTS x1, y1, z1, x2, y2, z2 .
	Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 > y2 AND z1 < z2`

func TestPaperEndToEnd(t *testing.T) {
	db, mgr, ids := paperDB(t)

	// Example 1: three conflicts.
	n, err := mgr.Conflicts()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("conflicts = %d, want 3", n)
	}
	if ok, _ := mgr.Consistent(); ok {
		t.Fatal("instance should be inconsistent")
	}

	// Example 2: three repairs; Q1 is not consistently true.
	c, err := db.CountRepairs(Rep, "Mgr")
	if err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Fatalf("repairs = %d, want 3", c)
	}
	a, err := db.Query(Rep, q1)
	if err != nil {
		t.Fatal(err)
	}
	if a != Undetermined {
		t.Fatalf("Q1 = %v, want undetermined", a)
	}

	// Example 3: prefer s1/s2 tuples over s3 tuples.
	if err := mgr.Prefer(ids["mary"], ids["maryIT"]); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Prefer(ids["john"], ids["johnPR"]); err != nil {
		t.Fatal(err)
	}
	a, err = db.Query(Global, q2)
	if err != nil {
		t.Fatal(err)
	}
	if a != True {
		t.Fatalf("Q2 over G-Rep = %v, want true", a)
	}
	// Plain Rep remains undetermined — preferences are what decide.
	a, err = db.Query(Rep, q2)
	if err != nil {
		t.Fatal(err)
	}
	if a != Undetermined {
		t.Fatalf("Q2 over Rep = %v, want undetermined", a)
	}
}

func TestPreferByRank(t *testing.T) {
	db, mgr, ids := paperDB(t)
	rank := map[TupleID]int{ids["mary"]: 0, ids["john"]: 0, ids["maryIT"]: 1, ids["johnPR"]: 1}
	if err := mgr.PreferByRank(func(id TupleID) int { return rank[id] }); err != nil {
		t.Fatal(err)
	}
	a, err := db.Query(Global, q2)
	if err != nil {
		t.Fatal(err)
	}
	if a != True {
		t.Fatalf("Q2 = %v, want true", a)
	}
	c, err := db.CountRepairs(Global, "Mgr")
	if err != nil {
		t.Fatal(err)
	}
	if c != 2 {
		t.Fatalf("preferred repairs = %d, want 2", c)
	}
}

func TestRepairsMaterialization(t *testing.T) {
	db, _, _ := paperDB(t)
	reps, err := db.Repairs(Rep, "Mgr")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("repairs = %d", len(reps))
	}
	for _, r := range reps {
		if r.Len() != 2 {
			t.Fatalf("every Mgr repair has 2 tuples, got %d", r.Len())
		}
	}
}

func TestIsPreferredRepair(t *testing.T) {
	db, mgr, ids := paperDB(t)
	mgr.Prefer(ids["mary"], ids["maryIT"]) //nolint:errcheck
	mgr.Prefer(ids["john"], ids["johnPR"]) //nolint:errcheck
	ok, err := db.IsPreferredRepair(Global, "Mgr", []TupleID{ids["mary"], ids["johnPR"]})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("r1 should be a globally optimal repair")
	}
	ok, err = db.IsPreferredRepair(Global, "Mgr", []TupleID{ids["maryIT"], ids["johnPR"]})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("r3 should not be globally optimal (maryIT is dominated)")
	}
}

func TestCleanFacade(t *testing.T) {
	db, mgr, ids := paperDB(t)
	mgr.Prefer(ids["mary"], ids["maryIT"]) //nolint:errcheck
	mgr.Prefer(ids["john"], ids["johnPR"]) //nolint:errcheck
	mgr.Prefer(ids["mary"], ids["john"])   //nolint:errcheck — now total
	cleaned, err := db.Clean("Mgr")
	if err != nil {
		t.Fatal(err)
	}
	// Total priority: the unique repair is {mary, johnPR}.
	if cleaned.Len() != 2 || !cleaned.Contains(Tuple{Name("Mary"), Name("R&D"), Int(40), Int(3)}) {
		t.Fatalf("cleaned = %s", cleaned)
	}
}

func TestQueryOpen(t *testing.T) {
	db, mgr, ids := paperDB(t)
	mgr.Prefer(ids["mary"], ids["maryIT"]) //nolint:errcheck
	mgr.Prefer(ids["john"], ids["johnPR"]) //nolint:errcheck
	ans, err := db.QueryOpen(Global, "EXISTS d, s, r . Mgr(n, d, s, r)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("certain names = %v, want Mary and John", ans)
	}
}

func TestAxiomsFacade(t *testing.T) {
	db, mgr, ids := paperDB(t)
	mgr.Prefer(ids["mary"], ids["maryIT"]) //nolint:errcheck
	rep, err := db.CheckAxioms(Global, "Mgr")
	if err != nil {
		t.Fatal(err)
	}
	if rep.P1.String() != "holds" || rep.P3.String() != "holds" {
		t.Fatalf("axioms = %+v", rep)
	}
}

func TestConflictGraphDOT(t *testing.T) {
	db, _, _ := paperDB(t)
	dot, err := db.ConflictGraphDOT("Mgr")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "graph Mgr {") || !strings.Contains(dot, "--") {
		t.Fatalf("DOT = %s", dot)
	}
}

func TestFacadeErrors(t *testing.T) {
	db := New()
	if _, err := db.CreateRelation("R"); err == nil {
		t.Error("relation without attributes should fail")
	}
	r, err := db.CreateRelation("R", IntAttr("A"), IntAttr("B"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("R", IntAttr("A")); err == nil {
		t.Error("duplicate relation should fail")
	}
	if _, err := r.Insert("not-an-int", 1); err != nil {
		// expected: wrong kind
	} else {
		t.Error("bad insert should fail")
	}
	if err := r.AddFD("Nope -> A"); err == nil {
		t.Error("FD over unknown attribute should fail")
	}
	if err := r.Prefer(0, 99); err == nil {
		t.Error("preference on unknown tuple should fail")
	}
	if _, err := db.Query(Rep, "R(1"); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := db.Query(Rep, "Nope(1)"); err == nil {
		t.Error("query over unknown relation should fail")
	}
	if _, err := db.Repairs(Rep, "Nope"); err == nil {
		t.Error("repairs of unknown relation should fail")
	}
	if _, err := db.CountRepairs(Rep, "Nope"); err == nil {
		t.Error("count of unknown relation should fail")
	}
	if _, err := db.Clean("Nope"); err == nil {
		t.Error("clean of unknown relation should fail")
	}
	if _, err := db.ConflictGraphDOT("Nope"); err == nil {
		t.Error("DOT of unknown relation should fail")
	}
	if _, err := db.CheckAxioms(Rep, "Nope"); err == nil {
		t.Error("axioms of unknown relation should fail")
	}
	if _, err := db.IsPreferredRepair(Rep, "Nope", nil); err == nil {
		t.Error("check on unknown relation should fail")
	}
}

func TestContradictoryPreferences(t *testing.T) {
	db, mgr, ids := paperDB(t)
	mgr.Prefer(ids["mary"], ids["john"]) //nolint:errcheck
	mgr.Prefer(ids["john"], ids["mary"]) //nolint:errcheck
	if _, err := db.Query(Rep, q1); err == nil {
		t.Fatal("contradictory preferences should surface as an error")
	}
}

// TestPreferNonConflictingIgnored follows Definition 2: preferences
// between non-conflicting tuples are simply not part of the priority.
func TestPreferNonConflictingIgnored(t *testing.T) {
	db, mgr, ids := paperDB(t)
	if err := mgr.Prefer(ids["maryIT"], ids["johnPR"]); err != nil {
		t.Fatal(err)
	}
	// maryIT and johnPR do not conflict; family results are as with no
	// priority at all.
	c, err := db.CountRepairs(Global, "Mgr")
	if err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Fatalf("G-Rep = %d, want 3 (preference ignored)", c)
	}
}

func TestInsertInvalidation(t *testing.T) {
	db := New()
	r, _ := db.CreateRelation("R", IntAttr("A"), IntAttr("B"))
	r.MustInsert(1, 1)
	if err := r.AddFD("A -> B"); err != nil {
		t.Fatal(err)
	}
	if c, _ := db.CountRepairs(Rep, "R"); c != 1 {
		t.Fatalf("repairs = %d", c)
	}
	// Insert a conflicting tuple after the graph was built: results
	// must reflect the new instance.
	r.MustInsert(1, 2)
	c, err := db.CountRepairs(Rep, "R")
	if err != nil {
		t.Fatal(err)
	}
	if c != 2 {
		t.Fatalf("repairs after insert = %d, want 2", c)
	}
}

func TestMultiRelationFacade(t *testing.T) {
	db := New()
	emp, _ := db.CreateRelation("Emp", NameAttr("Name"), IntAttr("Salary"))
	dept, _ := db.CreateRelation("Dept", NameAttr("DName"), IntAttr("Budget"))
	e1 := emp.MustInsert("Mary", 40)
	emp.MustInsert("Mary", 50)
	emp.AddFD("Name -> Salary") //nolint:errcheck
	d1 := dept.MustInsert("R&D", 100)
	dept.MustInsert("R&D", 90)
	dept.AddFD("DName -> Budget") //nolint:errcheck
	emp.Prefer(e1, 1)             //nolint:errcheck — keep salary 40
	dept.Prefer(d1, 1)            //nolint:errcheck — keep budget 100

	a, err := db.Query(Global, "EXISTS s, b . Emp('Mary', s) AND Dept('R&D', b) AND s < b")
	if err != nil {
		t.Fatal(err)
	}
	if a != True {
		t.Fatalf("join = %v, want true", a)
	}
	if got := db.Relations(); len(got) != 2 || got[0] != "Emp" {
		t.Fatalf("Relations = %v", got)
	}
	if _, ok := db.Relation("Emp"); !ok {
		t.Fatal("Relation lookup failed")
	}
}

func TestAddInstance(t *testing.T) {
	db := New()
	inst := NewStandaloneInstance(t)
	r, err := db.AddInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddFD("A -> B"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddInstance(inst); err == nil {
		t.Fatal("duplicate AddInstance should fail")
	}
	c, err := db.CountRepairs(Rep, "R")
	if err != nil {
		t.Fatal(err)
	}
	if c != 2 {
		t.Fatalf("repairs = %d", c)
	}
}

// NewStandaloneInstance builds a small instance outside the facade,
// exercising the AddInstance path used by the CLI tools.
func NewStandaloneInstance(t testing.TB) *Instance {
	t.Helper()
	schema, err := NewSchema("R", IntAttr("A"), IntAttr("B"))
	if err != nil {
		t.Fatal(err)
	}
	inst := NewInstance(schema)
	inst.MustInsert(1, 1)
	inst.MustInsert(1, 2)
	return inst
}
