package prefcqa

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// plannerQueries covers the access-path surface at facade level:
// constant probes, runtime-bound join variables, negated atoms,
// guarded universals, ground atoms and open queries.
var plannerQueries = []string{
	"EXISTS v . R(1, v)",
	"EXISTS v . R(7, v) AND v > 1",
	"EXISTS k, v . R(k, v) AND R(v, k)",
	"EXISTS k . R(k, k)",
	"FORALL k, v . NOT R(k, v) OR v >= 0",
	"EXISTS k, v . R(k, v) AND NOT R(v, 0)",
	"R(1, 0)",
	"R(2, 1) AND NOT R(2, 0)",
	// Acyclic self-join chains and stars: the Yannakakis executor
	// must agree with greedy and scan across every repair family.
	"EXISTS a, b, c . R(a, b) AND R(b, c)",
	"EXISTS a, b, c, d . R(a, b) AND R(b, c) AND R(c, d)",
	"EXISTS h, a, b . R(h, a) AND R(h, b) AND a < b",
}

// TestFacadeIndexedMatchesScan is the facade-level planner property:
// for every family, every query and every snapshot of a mutating
// relation, WithIndexes(true) and WithIndexes(false) must return
// identical answers — the planner only changes access paths.
func TestFacadeIndexedMatchesScan(t *testing.T) {
	families := []Family{Rep, Local, SemiGlobal, Global, Common}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		idx, rIdx := newMutDB(t)
		scan, rScan := newMutDB(t, WithIndexes(false))

		checkAll := func(tag string) {
			t.Helper()
			for _, f := range families {
				for _, src := range plannerQueries {
					a, errA := idx.Query(f, src)
					b, errB := scan.Query(f, src)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("seed %d %s %v %q: error mismatch indexed=%v scan=%v", seed, tag, f, src, errA, errB)
					}
					if errA == nil && a != b {
						t.Fatalf("seed %d %s %v %q: indexed=%v scan=%v", seed, tag, f, src, a, b)
					}
				}
			}
			// Open queries go through the same evaluator; their
			// certain-answer sets must match too.
			for _, f := range families {
				ba, errA := idx.QueryOpen(f, "EXISTS v . R(x, v) AND v > 0")
				bb, errB := scan.QueryOpen(f, "EXISTS v . R(x, v) AND v > 0")
				if (errA == nil) != (errB == nil) {
					t.Fatalf("seed %d %s %v open: error mismatch %v vs %v", seed, tag, f, errA, errB)
				}
				if errA != nil {
					continue
				}
				fp := func(bs []Binding) string {
					out := make([]string, len(bs))
					for i, b := range bs {
						out[i] = b.String()
					}
					return strings.Join(out, ";")
				}
				if fp(ba) != fp(bb) {
					t.Fatalf("seed %d %s %v open: indexed=%s scan=%s", seed, tag, f, fp(ba), fp(bb))
				}
			}
		}

		// Seed data: conflicting clusters on K with some preferences.
		var ids []TupleID
		for i := 0; i < 12; i++ {
			id, err := rIdx.Insert(i%5, i%3)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rScan.Insert(i%5, i%3); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		checkAll("seeded")

		// Mutation batches interleaved with queries: the indexed DB's
		// postings accumulate tombstones and fresh IDs, the scan DB
		// stays the oracle.
		for batch := 0; batch < 6; batch++ {
			for j := 0; j < 3; j++ {
				switch rng.Intn(3) {
				case 0:
					a, b := int64(rng.Intn(6)), int64(rng.Intn(4))
					if _, err := rIdx.Insert(a, b); err != nil {
						t.Fatal(err)
					}
					if _, err := rScan.Insert(a, b); err != nil {
						t.Fatal(err)
					}
				case 1:
					if len(ids) > 0 {
						v := ids[rng.Intn(len(ids))]
						rIdx.Delete(v)
						rScan.Delete(v)
					}
				case 2:
					gi, err := rIdx.Graph()
					if err != nil {
						t.Fatal(err)
					}
					es := gi.Edges()
					if len(es) > 0 {
						e := es[rng.Intn(len(es))]
						x, y := e.A, e.B
						if x > y {
							x, y = y, x // low ≻ high stays acyclic
						}
						if err := rIdx.Prefer(x, y); err != nil {
							t.Fatal(err)
						}
						if err := rScan.Prefer(x, y); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			checkAll(fmt.Sprintf("batch %d", batch))
		}

		// Snapshot isolation: a snapshot taken now must keep answering
		// identically on both DBs while the heads mutate on.
		snapIdx, err := idx.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snapScan, err := scan.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		wantSnap := map[string]Answer{}
		for _, src := range plannerQueries {
			a, err := snapIdx.Query(Global, src)
			if err != nil {
				t.Fatal(err)
			}
			wantSnap[src] = a
		}
		for j := 0; j < 5; j++ {
			if _, err := rIdx.Insert(int64(j%5), int64(10+j)); err != nil {
				t.Fatal(err)
			}
			if _, err := rScan.Insert(int64(j%5), int64(10+j)); err != nil {
				t.Fatal(err)
			}
		}
		checkAll("post-snapshot")
		for _, src := range plannerQueries {
			a, err := snapIdx.Query(Global, src)
			if err != nil {
				t.Fatal(err)
			}
			b, err := snapScan.Query(Global, src)
			if err != nil {
				t.Fatal(err)
			}
			if a != wantSnap[src] || b != wantSnap[src] {
				t.Fatalf("seed %d snapshot drift on %q: indexed=%v scan=%v want %v", seed, src, a, b, wantSnap[src])
			}
		}
	}
}

// TestExplainPlanFacade pins the facade's plan report: a selective
// EXISTS must show an index probe, the scan-only DB must not, and
// ill-formed inputs must error.
func TestExplainPlanFacade(t *testing.T) {
	db, r := newMutDB(t)
	for i := 0; i < 50; i++ {
		if _, err := r.Insert(i, i%3); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := db.ExplainPlan("EXISTS v . R(7, v)")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Indexed || !rep.Holds {
		t.Fatalf("report = %+v; want indexed and holds", rep)
	}
	if len(rep.Plans) != 1 || !strings.Contains(rep.Plans[0], "index(K=7)") {
		t.Fatalf("plan should probe K=7:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "mode: indexed") {
		t.Fatalf("rendering: %s", rep)
	}

	// Ground queries compile no quantifier plans.
	rep, err = db.ExplainPlan("R(7, 1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Plans) != 0 || !strings.Contains(rep.String(), "no planned quantifiers") {
		t.Fatalf("ground query report: %s", rep)
	}

	// Scan-only DB reports scan access.
	sdb, sr := newMutDB(t, WithIndexes(false))
	if _, err := sr.Insert(7, 1); err != nil {
		t.Fatal(err)
	}
	rep, err = sdb.ExplainPlan("EXISTS v . R(7, v)")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Indexed || !strings.Contains(rep.Plans[0], "scan") {
		t.Fatalf("scan-only report: %+v", rep)
	}

	// Errors: open queries and parse failures.
	if _, err := db.ExplainPlan("EXISTS v . R(x, v)"); err == nil {
		t.Fatal("open query must error")
	}
	if _, err := db.ExplainPlan(")("); err == nil {
		t.Fatal("parse failure must error")
	}
	if _, err := db.ExplainPlan("EXISTS v . Nope(v)"); err == nil {
		t.Fatal("unknown relation must error")
	}
}
