package prefcqa_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"prefcqa"
)

// families under test, with names for diagnostics.
var allFamilies = []struct {
	name string
	f    prefcqa.Family
}{
	{"Rep", prefcqa.Rep},
	{"L-Rep", prefcqa.Local},
	{"S-Rep", prefcqa.SemiGlobal},
	{"G-Rep", prefcqa.Global},
	{"C-Rep", prefcqa.Common},
}

// buildRandomDB materializes the same random relation into a fresh DB
// per engine configuration. Conflicts are oriented by a random rank
// (rank-derived preferences are always acyclic).
func buildRandomDB(t *testing.T, seed int64, n int, opts ...prefcqa.Option) *prefcqa.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := prefcqa.New(opts...)
	r, err := db.CreateRelation("R",
		prefcqa.IntAttr("A"), prefcqa.IntAttr("B"), prefcqa.IntAttr("C"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.MustInsert(rng.Intn(3), rng.Intn(3), rng.Intn(3))
	}
	if err := r.AddFD("A -> B"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddFD("B -> C"); err != nil {
		t.Fatal(err)
	}
	ranks := make([]int, r.Instance().Len())
	for i := range ranks {
		ranks[i] = rng.Intn(4)
	}
	if err := r.PreferByRank(func(id prefcqa.TupleID) int { return ranks[int(id)] }); err != nil {
		t.Fatal(err)
	}
	return db
}

// repairFingerprint renders the materialized repairs order-sensitively
// so the comparison also covers enumeration order.
func repairFingerprint(t *testing.T, db *prefcqa.DB, f prefcqa.Family) string {
	t.Helper()
	reps, err := db.Repairs(f, "R")
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, inst := range reps {
		var rows []string
		inst.Range(func(_ prefcqa.TupleID, tup prefcqa.Tuple) bool {
			rows = append(rows, tup.String())
			return true
		})
		sort.Strings(rows)
		out += fmt.Sprint(rows) + "\n"
	}
	return out
}

// TestParallelismEquivalence: repairs, counts, and certain answers
// agree between WithParallelism(1) and WithParallelism(8) — with and
// without the cache — across all families on randomized instances.
func TestParallelismEquivalence(t *testing.T) {
	queries := []string{
		"EXISTS x, y, z . R(x, y, z)",
		"R(0, 0, 0) OR R(1, 1, 1)",
		"FORALL x, y, z . NOT R(x, y, z) OR x < 2 OR y < 2 OR z < 2",
	}
	for seed := int64(1); seed <= 6; seed++ {
		n := 8 + int(seed)%4
		seq := buildRandomDB(t, seed, n,
			prefcqa.WithParallelism(1), prefcqa.WithCache(false))
		par := buildRandomDB(t, seed, n,
			prefcqa.WithParallelism(8), prefcqa.WithCache(true))
		parNoCache := buildRandomDB(t, seed, n,
			prefcqa.WithParallelism(8), prefcqa.WithCache(false))
		for _, fam := range allFamilies {
			wantCount, err := seq.CountRepairs(fam.f, "R")
			if err != nil {
				t.Fatal(err)
			}
			wantReps := repairFingerprint(t, seq, fam.f)
			for name, db := range map[string]*prefcqa.DB{"parallel+cache": par, "parallel": parNoCache} {
				gotCount, err := db.CountRepairs(fam.f, "R")
				if err != nil {
					t.Fatal(err)
				}
				if gotCount != wantCount {
					t.Errorf("seed %d, %s, %s: count = %d, want %d",
						seed, fam.name, name, gotCount, wantCount)
				}
				if got := repairFingerprint(t, db, fam.f); got != wantReps {
					t.Errorf("seed %d, %s, %s: repairs differ\nseq:\n%spar:\n%s",
						seed, fam.name, name, wantReps, got)
				}
				for _, q := range queries {
					want, err := seq.Query(fam.f, q)
					if err != nil {
						t.Fatal(err)
					}
					got, err := db.Query(fam.f, q)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("seed %d, %s, %s, %q: answer = %v, want %v",
							seed, fam.name, name, q, got, want)
					}
				}
			}
		}
	}
}

// TestParallelismOpenQueryEquivalence: certain answers to open
// queries also agree between engine configurations.
func TestParallelismOpenQueryEquivalence(t *testing.T) {
	seq := buildRandomDB(t, 42, 9, prefcqa.WithParallelism(1), prefcqa.WithCache(false))
	par := buildRandomDB(t, 42, 9, prefcqa.WithParallelism(8), prefcqa.WithCache(true))
	for _, fam := range allFamilies {
		want, err := seq.QueryOpen(fam.f, "EXISTS y . R(x, y, z)")
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.QueryOpen(fam.f, "EXISTS y . R(x, y, z)")
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Errorf("%s: open answers differ:\nseq: %v\npar: %v", fam.name, want, got)
		}
	}
}
