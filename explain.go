package prefcqa

import (
	"fmt"
	"sort"
	"strings"

	"prefcqa/internal/bitset"
	"prefcqa/internal/core"
	"prefcqa/internal/cqa"
	"prefcqa/internal/query"
)

// TupleReport explains one tuple's inconsistency status: its
// conflicts (labelled with the violated dependency), its position in
// the preference order, and its membership across the family's
// preferred repairs.
type TupleReport struct {
	ID    TupleID
	Tuple Tuple
	// Conflicts lists the conflicting tuples and the dependency each
	// conflict violates (rendered "X -> Y").
	Conflicts []ConflictInfo
	// DominatedBy and Dominates list the recorded preference edges
	// touching the tuple.
	DominatedBy []TupleID
	Dominates   []TupleID
	// InAll / InSome report membership over the preferred repairs of
	// the family the report was built for: certainly kept, possibly
	// kept, or (if both are false) never kept.
	InAll  bool
	InSome bool
}

// ConflictInfo is one conflict edge incident to the reported tuple.
type ConflictInfo struct {
	With TupleID
	FD   string
}

// Status summarizes the report: "clean" (no conflicts), "kept"
// (in every preferred repair), "disputed" (in some), or "rejected"
// (in none).
func (r TupleReport) Status() string {
	switch {
	case len(r.Conflicts) == 0:
		return "clean"
	case r.InAll:
		return "kept"
	case r.InSome:
		return "disputed"
	default:
		return "rejected"
	}
}

// ExplainTuple builds a TupleReport for one tuple of a relation under
// the given family.
func (db *DB) ExplainTuple(f Family, rel string, id TupleID) (TupleReport, error) {
	r, ok := db.rels[rel]
	if !ok {
		return TupleReport{}, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return TupleReport{}, err
	}
	if !built.Inst.Live(id) {
		return TupleReport{}, fmt.Errorf("prefcqa: relation %s has no tuple %d", rel, id)
	}
	g := built.Pri.Graph()
	rep := TupleReport{ID: id, Tuple: built.Inst.Tuple(id)}
	for _, e := range g.Edges() {
		var other TupleID
		switch id {
		case e.A:
			other = e.B
		case e.B:
			other = e.A
		default:
			continue
		}
		rep.Conflicts = append(rep.Conflicts, ConflictInfo{With: other, FD: built.FDs.FD(e.FD).String()})
	}
	for _, d := range built.Pri.Dominators(id) {
		rep.DominatedBy = append(rep.DominatedBy, TupleID(d))
	}
	for _, d := range built.Pri.Dominated(id) {
		rep.Dominates = append(rep.Dominates, TupleID(d))
	}
	sort.Slice(rep.Conflicts, func(i, j int) bool { return rep.Conflicts[i].With < rep.Conflicts[j].With })

	// Membership across the preferred repairs: only the components
	// containing the tuple matter.
	comp := g.ConflictClosure(bitset.FromSlice([]int{id}))
	var compVertices []int
	comp.Range(func(v int) bool { compVertices = append(compVertices, v); return true })
	choices := core.ChoicesForComponent(f, built.Pri, compVertices)
	if len(choices) == 0 {
		return TupleReport{}, fmt.Errorf("prefcqa: no preferred choice for tuple %d's component", id)
	}
	rep.InAll = true
	for _, c := range choices {
		if c.Has(id) {
			rep.InSome = true
		} else {
			rep.InAll = false
		}
	}
	return rep, nil
}

// PlanReport explains how the query planner evaluates a closed
// query: the physical plan of every existential quantifier the
// planner compiled — access path per atom (secondary-index probe vs
// scan), join order, and estimated vs actual candidate rows — from
// one evaluation against the full current instance of every relation
// (all tuples visible, tombstones excluded). Per-repair evaluations
// during Query compile the same plan shape with repair subsets
// filtered on top of the index candidates, so a regression visible
// here (an unexpected scan, an estimate far off the actual rows) is
// the same regression Query pays once per repair.
type PlanReport struct {
	// Query is the parsed query, printed back.
	Query string
	// Indexed reports whether index access paths were available
	// (false under WithIndexes(false)).
	Indexed bool
	// Holds is the query's value on the full (possibly inconsistent)
	// instance — not the preferred-repair answer; use Query for that.
	Holds bool
	// Plans holds one rendered physical plan per EXISTS the planner
	// executed, in execution order. Quantifiers that fell back to
	// active-domain iteration (no positive atoms, or a variable
	// occurring only in residual conjuncts) produce no plan.
	Plans []string
}

// String renders the report.
func (r PlanReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", r.Query)
	mode := "indexed"
	if !r.Indexed {
		mode = "scan-only"
	}
	fmt.Fprintf(&b, "mode: %s; holds on full instance: %v\n", mode, r.Holds)
	if len(r.Plans) == 0 {
		b.WriteString("no planned quantifiers (ground query or domain-iteration fallback)")
		return b.String()
	}
	for i, p := range r.Plans {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "plan %d: %s", i+1, p)
	}
	return b.String()
}

// ExplainPlan compiles and runs the closed query once against the
// full current instance of every relation and reports the physical
// plans the planner chose. It is the diagnosis companion of Query:
// the answer reported here is the raw-instance value, not the
// preferred-repair answer. Snapshot.ExplainPlan is the same report
// against pinned versions.
func (db *DB) ExplainPlan(src string) (PlanReport, error) {
	in, err := db.input()
	if err != nil {
		return PlanReport{}, err
	}
	return explainPlan(in, src)
}

// explainPlan runs one traced evaluation of the closed query over the
// assembled input — shared by the DB and Snapshot entry points.
func explainPlan(in cqa.Input, src string) (PlanReport, error) {
	q, err := query.Parse(src)
	if err != nil {
		return PlanReport{}, err
	}
	schemas := make(map[string]*Schema, len(in.Rels))
	for _, r := range in.Rels {
		schemas[r.Inst.Schema().Name()] = r.Inst.Schema()
	}
	if err := query.Validate(q, schemas); err != nil {
		return PlanReport{}, err
	}
	if !query.IsClosed(q) {
		return PlanReport{}, fmt.Errorf("prefcqa: ExplainPlan needs a closed query, free variables %v", query.FreeVars(q))
	}
	var m query.Model = query.DBModel{DB: in.DB}
	if in.ScanOnly {
		m = query.ScanOnly(m)
	}
	holds, trace, err := query.EvalTraceCtx(in.Ctx, q, m)
	if err != nil {
		return PlanReport{}, err
	}
	rep := PlanReport{Query: q.String(), Indexed: !in.ScanOnly, Holds: holds}
	for _, e := range trace.Execs {
		rep.Plans = append(rep.Plans, e.Describe())
	}
	return rep, nil
}

// String renders the report compactly.
func (r TupleReport) String() string {
	s := fmt.Sprintf("t%d %s: %s", r.ID, r.Tuple, r.Status())
	for _, c := range r.Conflicts {
		s += fmt.Sprintf("\n  conflicts with t%d (%s)", c.With, c.FD)
	}
	if len(r.DominatedBy) > 0 {
		s += fmt.Sprintf("\n  dominated by %v", r.DominatedBy)
	}
	if len(r.Dominates) > 0 {
		s += fmt.Sprintf("\n  dominates %v", r.Dominates)
	}
	return s
}
