package prefcqa

import (
	"fmt"
	"sort"

	"prefcqa/internal/bitset"
	"prefcqa/internal/core"
)

// TupleReport explains one tuple's inconsistency status: its
// conflicts (labelled with the violated dependency), its position in
// the preference order, and its membership across the family's
// preferred repairs.
type TupleReport struct {
	ID    TupleID
	Tuple Tuple
	// Conflicts lists the conflicting tuples and the dependency each
	// conflict violates (rendered "X -> Y").
	Conflicts []ConflictInfo
	// DominatedBy and Dominates list the recorded preference edges
	// touching the tuple.
	DominatedBy []TupleID
	Dominates   []TupleID
	// InAll / InSome report membership over the preferred repairs of
	// the family the report was built for: certainly kept, possibly
	// kept, or (if both are false) never kept.
	InAll  bool
	InSome bool
}

// ConflictInfo is one conflict edge incident to the reported tuple.
type ConflictInfo struct {
	With TupleID
	FD   string
}

// Status summarizes the report: "clean" (no conflicts), "kept"
// (in every preferred repair), "disputed" (in some), or "rejected"
// (in none).
func (r TupleReport) Status() string {
	switch {
	case len(r.Conflicts) == 0:
		return "clean"
	case r.InAll:
		return "kept"
	case r.InSome:
		return "disputed"
	default:
		return "rejected"
	}
}

// ExplainTuple builds a TupleReport for one tuple of a relation under
// the given family.
func (db *DB) ExplainTuple(f Family, rel string, id TupleID) (TupleReport, error) {
	r, ok := db.rels[rel]
	if !ok {
		return TupleReport{}, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return TupleReport{}, err
	}
	if !built.Inst.Live(id) {
		return TupleReport{}, fmt.Errorf("prefcqa: relation %s has no tuple %d", rel, id)
	}
	g := built.Pri.Graph()
	rep := TupleReport{ID: id, Tuple: built.Inst.Tuple(id)}
	for _, e := range g.Edges() {
		var other TupleID
		switch id {
		case e.A:
			other = e.B
		case e.B:
			other = e.A
		default:
			continue
		}
		rep.Conflicts = append(rep.Conflicts, ConflictInfo{With: other, FD: built.FDs.FD(e.FD).String()})
	}
	for _, d := range built.Pri.Dominators(id) {
		rep.DominatedBy = append(rep.DominatedBy, TupleID(d))
	}
	for _, d := range built.Pri.Dominated(id) {
		rep.Dominates = append(rep.Dominates, TupleID(d))
	}
	sort.Slice(rep.Conflicts, func(i, j int) bool { return rep.Conflicts[i].With < rep.Conflicts[j].With })

	// Membership across the preferred repairs: only the components
	// containing the tuple matter.
	comp := g.ConflictClosure(bitset.FromSlice([]int{id}))
	var compVertices []int
	comp.Range(func(v int) bool { compVertices = append(compVertices, v); return true })
	choices := core.ChoicesForComponent(f, built.Pri, compVertices)
	if len(choices) == 0 {
		return TupleReport{}, fmt.Errorf("prefcqa: no preferred choice for tuple %d's component", id)
	}
	rep.InAll = true
	for _, c := range choices {
		if c.Has(id) {
			rep.InSome = true
		} else {
			rep.InAll = false
		}
	}
	return rep, nil
}

// String renders the report compactly.
func (r TupleReport) String() string {
	s := fmt.Sprintf("t%d %s: %s", r.ID, r.Tuple, r.Status())
	for _, c := range r.Conflicts {
		s += fmt.Sprintf("\n  conflicts with t%d (%s)", c.With, c.FD)
	}
	if len(r.DominatedBy) > 0 {
		s += fmt.Sprintf("\n  dominated by %v", r.DominatedBy)
	}
	if len(r.Dominates) > 0 {
		s += fmt.Sprintf("\n  dominates %v", r.Dominates)
	}
	return s
}
