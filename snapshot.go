package prefcqa

import (
	"context"
	"fmt"

	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/core"
	"prefcqa/internal/cqa"
	"prefcqa/internal/query"
	"prefcqa/internal/repair"
)

// Snapshot is an immutable point-in-time view of a DB: every relation
// is pinned at one published version (instance, conflict graph,
// priority, component index). Queries against a snapshot are
// unaffected by concurrent mutation of the DB — writers publish new
// versions, the snapshot keeps the old ones — so a reader can issue
// any number of consistent reads while the database churns.
//
// A snapshot shares the DB's evaluation engine and per-relation count
// caches; cache entries are keyed by immutable (era, component ID)
// identities, so sharing them across versions is safe.
//
// The Context-suffixed variants accept a cancellation context that is
// plumbed down into the evaluation engine and checked per
// conflict-graph component — the serving layer uses them to enforce
// per-request deadlines. The plain variants never cancel.
type Snapshot struct {
	engine   *core.Engine
	order    []string
	rels     map[string]snapRel
	scanOnly bool
	stats    *cqa.EvalStats // shared with the owning DB; see DB.QueryStats
}

type snapRel struct {
	rel    *cqa.Relation
	counts *core.CountCache
}

// Snapshot materializes any pending mutations and returns an
// immutable view of every relation's current version. The cut is
// atomic across relations: mutators hold the DB's snapshot gate in
// read mode, so while the versions are pinned no relation can move,
// and the snapshot equals the database's real state at one instant —
// never relation A from one moment and relation B from another.
// (Individual mutation calls are the atomic unit: a snapshot may
// still land between two calls of a logical multi-call update.)
// O(pending delta); with nothing pending it is a handful of atomic
// loads per relation.
func (db *DB) Snapshot() (*Snapshot, error) {
	s := &Snapshot{
		engine:   db.engine,
		order:    append([]string(nil), db.order...),
		rels:     make(map[string]snapRel, len(db.order)),
		scanOnly: !db.indexes,
		stats:    db.stats,
	}
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	for _, name := range db.order {
		r := db.rels[name]
		built, err := r.build()
		if err != nil {
			return nil, fmt.Errorf("prefcqa: relation %s: %w", name, err)
		}
		s.rels[name] = snapRel{rel: built, counts: r.counts}
	}
	return s, nil
}

// Relations lists the snapshot's relation names in creation order.
func (s *Snapshot) Relations() []string {
	return append([]string(nil), s.order...)
}

// Versions returns the pinned instance version of every relation —
// useful to confirm which state a long-running reader is looking at.
func (s *Snapshot) Versions() map[string]uint64 {
	out := make(map[string]uint64, len(s.rels))
	for name, sr := range s.rels {
		out[name] = sr.rel.Inst.Version()
	}
	return out
}

// Instance returns the pinned instance of a relation.
func (s *Snapshot) Instance(rel string) (*Instance, bool) {
	sr, ok := s.rels[rel]
	if !ok {
		return nil, false
	}
	return sr.rel.Inst, true
}

// input assembles the CQA input over the pinned versions.
func (s *Snapshot) input(ctx context.Context) (cqa.Input, error) {
	rels := make([]*cqa.Relation, 0, len(s.order))
	for _, name := range s.order {
		rels = append(rels, s.rels[name].rel)
	}
	in, err := cqa.NewInput(rels...)
	if err != nil {
		return cqa.Input{}, err
	}
	in = in.WithEngine(s.engine).WithScanOnly(s.scanOnly).WithStats(s.stats)
	if ctx != nil {
		in = in.WithContext(ctx)
	}
	return in, nil
}

// Query evaluates a closed first-order query under the family's
// preferred-repair semantics against the pinned versions.
func (s *Snapshot) Query(f Family, src string) (Answer, error) {
	return s.QueryContext(context.Background(), f, src)
}

// QueryContext is Query with cancellation: once ctx is cancelled the
// evaluation aborts with ctx.Err(), checked per conflict-graph
// component and per enumerated repair combination.
func (s *Snapshot) QueryContext(ctx context.Context, f Family, src string) (Answer, error) {
	q, err := query.Parse(src)
	if err != nil {
		return 0, err
	}
	in, err := s.input(ctx)
	if err != nil {
		return 0, err
	}
	return cqa.Evaluate(f, in, q)
}

// Certain reports whether true is the f-consistent answer to the
// closed query on the pinned versions.
func (s *Snapshot) Certain(f Family, src string) (bool, error) {
	a, err := s.Query(f, src)
	if err != nil {
		return false, err
	}
	return a == True, nil
}

// Possible reports whether the closed query holds in at least one
// preferred repair of the family (brave semantics).
func (s *Snapshot) Possible(f Family, src string) (bool, error) {
	a, err := s.Query(f, src)
	if err != nil {
		return false, err
	}
	return a != False, nil
}

// QueryOpen evaluates an open query (free variables allowed) and
// returns its certain answers on the pinned versions.
func (s *Snapshot) QueryOpen(f Family, src string) ([]Binding, error) {
	return s.QueryOpenContext(context.Background(), f, src)
}

// QueryOpenContext is QueryOpen with cancellation, checked per
// candidate substitution of the free variables.
func (s *Snapshot) QueryOpenContext(ctx context.Context, f Family, src string) ([]Binding, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	in, err := s.input(ctx)
	if err != nil {
		return nil, err
	}
	return cqa.FreeAnswers(f, in, q)
}

// CountRepairs returns the number of preferred repairs of a relation
// at the pinned version.
func (s *Snapshot) CountRepairs(f Family, rel string) (int64, error) {
	return s.CountRepairsContext(context.Background(), f, rel)
}

// CountRepairsContext is CountRepairs with cancellation, checked per
// conflict-graph component as the counts are merged.
func (s *Snapshot) CountRepairsContext(ctx context.Context, f Family, rel string) (int64, error) {
	sr, ok := s.rels[rel]
	if !ok {
		return 0, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	return s.engine.CountCachedCtx(ctx, f, sr.rel.Pri, sr.counts)
}

// Repairs materializes the family's preferred repairs of one relation
// at the pinned version. Use CountRepairs first — the result can be
// exponential.
func (s *Snapshot) Repairs(f Family, rel string) ([]*Instance, error) {
	var out []*Instance
	err := s.EnumerateRepairs(context.Background(), f, rel, func(inst *Instance) bool {
		out = append(out, inst)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EnumerateRepairs streams the family's preferred repairs of one
// relation at the pinned version, in canonical enumeration order,
// without materializing the full (possibly exponential) list. yield
// returns false to stop early (not an error). Once ctx is cancelled
// the enumeration aborts with ctx.Err(). This is the backing of the
// serving layer's NDJSON repair streaming.
func (s *Snapshot) EnumerateRepairs(ctx context.Context, f Family, rel string, yield func(*Instance) bool) error {
	sr, ok := s.rels[rel]
	if !ok {
		return fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	err := s.engine.EnumerateCtx(ctx, f, sr.rel.Pri, func(set *bitset.Set) bool {
		return yield(sr.rel.Inst.Subset(set))
	})
	if err == repair.ErrStopped {
		return nil // the consumer stopped; not a failure
	}
	return err
}

// Clean runs Algorithm 1 on the pinned version of the relation.
func (s *Snapshot) Clean(rel string) (*Instance, error) {
	sr, ok := s.rels[rel]
	if !ok {
		return nil, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	return sr.rel.Inst.Subset(clean.Deterministic(sr.rel.Pri)), nil
}

// Conflicts returns the number of conflicting tuple pairs of a
// relation at the pinned version.
func (s *Snapshot) Conflicts(rel string) (int, error) {
	sr, ok := s.rels[rel]
	if !ok {
		return 0, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	return sr.rel.Pri.Graph().NumEdges(), nil
}

// Components returns the number of connected components of a
// relation's conflict graph at the pinned version — the unit of
// parallel evaluation and the granularity of cancellation checks.
func (s *Snapshot) Components(rel string) (int, error) {
	sr, ok := s.rels[rel]
	if !ok {
		return 0, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	return len(sr.rel.Pri.Graph().Components()), nil
}

// ExplainPlan compiles and runs the closed query once against the
// pinned full instances and reports the physical plans the planner
// chose — DB.ExplainPlan against a snapshot.
func (s *Snapshot) ExplainPlan(src string) (PlanReport, error) {
	return s.ExplainPlanContext(context.Background(), src)
}

// ExplainPlanContext is ExplainPlan with cancellation: once ctx is
// cancelled the traced evaluation aborts with ctx.Err(), checked
// periodically as candidate rows are iterated.
func (s *Snapshot) ExplainPlanContext(ctx context.Context, src string) (PlanReport, error) {
	in, err := s.input(ctx)
	if err != nil {
		return PlanReport{}, err
	}
	return explainPlan(in, src)
}
