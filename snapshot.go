package prefcqa

import (
	"fmt"

	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/core"
	"prefcqa/internal/cqa"
	"prefcqa/internal/query"
)

// Snapshot is an immutable point-in-time view of a DB: every relation
// is pinned at one published version (instance, conflict graph,
// priority, component index). Queries against a snapshot are
// unaffected by concurrent mutation of the DB — writers publish new
// versions, the snapshot keeps the old ones — so a reader can issue
// any number of consistent reads while the database churns.
//
// A snapshot shares the DB's evaluation engine and per-relation count
// caches; cache entries are keyed by immutable (era, component ID)
// identities, so sharing them across versions is safe.
type Snapshot struct {
	engine *core.Engine
	order  []string
	rels   map[string]snapRel
}

type snapRel struct {
	rel    *cqa.Relation
	counts *core.CountCache
}

// Snapshot materializes any pending mutations and returns an
// immutable view of every relation's current version. The cut is
// atomic across relations: mutators hold the DB's snapshot gate in
// read mode, so while the versions are pinned no relation can move,
// and the snapshot equals the database's real state at one instant —
// never relation A from one moment and relation B from another.
// (Individual mutation calls are the atomic unit: a snapshot may
// still land between two calls of a logical multi-call update.)
// O(pending delta); with nothing pending it is a handful of atomic
// loads per relation.
func (db *DB) Snapshot() (*Snapshot, error) {
	s := &Snapshot{
		engine: db.engine,
		order:  append([]string(nil), db.order...),
		rels:   make(map[string]snapRel, len(db.order)),
	}
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	for _, name := range db.order {
		r := db.rels[name]
		built, err := r.build()
		if err != nil {
			return nil, fmt.Errorf("prefcqa: relation %s: %w", name, err)
		}
		s.rels[name] = snapRel{rel: built, counts: r.counts}
	}
	return s, nil
}

// Relations lists the snapshot's relation names in creation order.
func (s *Snapshot) Relations() []string {
	return append([]string(nil), s.order...)
}

// Versions returns the pinned instance version of every relation —
// useful to confirm which state a long-running reader is looking at.
func (s *Snapshot) Versions() map[string]uint64 {
	out := make(map[string]uint64, len(s.rels))
	for name, sr := range s.rels {
		out[name] = sr.rel.Inst.Version()
	}
	return out
}

// Instance returns the pinned instance of a relation.
func (s *Snapshot) Instance(rel string) (*Instance, bool) {
	sr, ok := s.rels[rel]
	if !ok {
		return nil, false
	}
	return sr.rel.Inst, true
}

// input assembles the CQA input over the pinned versions.
func (s *Snapshot) input() (cqa.Input, error) {
	rels := make([]*cqa.Relation, 0, len(s.order))
	for _, name := range s.order {
		rels = append(rels, s.rels[name].rel)
	}
	in, err := cqa.NewInput(rels...)
	if err != nil {
		return cqa.Input{}, err
	}
	return in.WithEngine(s.engine), nil
}

// Query evaluates a closed first-order query under the family's
// preferred-repair semantics against the pinned versions.
func (s *Snapshot) Query(f Family, src string) (Answer, error) {
	q, err := query.Parse(src)
	if err != nil {
		return 0, err
	}
	in, err := s.input()
	if err != nil {
		return 0, err
	}
	return cqa.Evaluate(f, in, q)
}

// Certain reports whether true is the f-consistent answer to the
// closed query on the pinned versions.
func (s *Snapshot) Certain(f Family, src string) (bool, error) {
	a, err := s.Query(f, src)
	if err != nil {
		return false, err
	}
	return a == True, nil
}

// Possible reports whether the closed query holds in at least one
// preferred repair of the family (brave semantics).
func (s *Snapshot) Possible(f Family, src string) (bool, error) {
	a, err := s.Query(f, src)
	if err != nil {
		return false, err
	}
	return a != False, nil
}

// QueryOpen evaluates an open query (free variables allowed) and
// returns its certain answers on the pinned versions.
func (s *Snapshot) QueryOpen(f Family, src string) ([]Binding, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	in, err := s.input()
	if err != nil {
		return nil, err
	}
	return cqa.FreeAnswers(f, in, q)
}

// CountRepairs returns the number of preferred repairs of a relation
// at the pinned version.
func (s *Snapshot) CountRepairs(f Family, rel string) (int64, error) {
	sr, ok := s.rels[rel]
	if !ok {
		return 0, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	return s.engine.CountCached(f, sr.rel.Pri, sr.counts)
}

// Repairs materializes the family's preferred repairs of one relation
// at the pinned version. Use CountRepairs first — the result can be
// exponential.
func (s *Snapshot) Repairs(f Family, rel string) ([]*Instance, error) {
	sr, ok := s.rels[rel]
	if !ok {
		return nil, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	var out []*Instance
	s.engine.Enumerate(f, sr.rel.Pri, func(set *bitset.Set) bool { //nolint:errcheck // never stops
		out = append(out, sr.rel.Inst.Subset(set))
		return true
	})
	return out, nil
}

// Clean runs Algorithm 1 on the pinned version of the relation.
func (s *Snapshot) Clean(rel string) (*Instance, error) {
	sr, ok := s.rels[rel]
	if !ok {
		return nil, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	return sr.rel.Inst.Subset(clean.Deterministic(sr.rel.Pri)), nil
}

// Conflicts returns the number of conflicting tuple pairs of a
// relation at the pinned version.
func (s *Snapshot) Conflicts(rel string) (int, error) {
	sr, ok := s.rels[rel]
	if !ok {
		return 0, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	return sr.rel.Pri.Graph().NumEdges(), nil
}
