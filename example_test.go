package prefcqa_test

import (
	"fmt"

	"prefcqa"
)

// The paper's running example: integrating conflicting sources and
// querying under preferred-repair semantics.
func Example() {
	db := prefcqa.New()
	mgr, _ := db.CreateRelation("Mgr",
		prefcqa.NameAttr("Name"), prefcqa.NameAttr("Dept"),
		prefcqa.IntAttr("Salary"), prefcqa.IntAttr("Reports"))

	mary := mgr.MustInsert("Mary", "R&D", 40, 3)  // source s1
	john := mgr.MustInsert("John", "R&D", 10, 2)  // source s2
	maryIT := mgr.MustInsert("Mary", "IT", 20, 1) // source s3
	johnPR := mgr.MustInsert("John", "PR", 30, 4) // source s3

	_ = mgr.AddFD("Dept -> Name, Salary, Reports")
	_ = mgr.AddFD("Name -> Dept, Salary, Reports")

	q2 := `EXISTS x1,y1,z1,x2,y2,z2 .
		Mgr('Mary',x1,y1,z1) AND Mgr('John',x2,y2,z2) AND y1 > y2 AND z1 < z2`

	before, _ := db.Query(prefcqa.Rep, q2)
	fmt.Println("no preferences:", before)

	// Example 3: s3 is less reliable than s1 and s2.
	_ = mgr.Prefer(mary, maryIT)
	_ = mgr.Prefer(john, johnPR)

	after, _ := db.Query(prefcqa.Global, q2)
	fmt.Println("with preferences:", after)
	// Output:
	// no preferences: undetermined
	// with preferences: true
}

// Counting and materializing preferred repairs.
func ExampleDB_Repairs() {
	db := prefcqa.New()
	r, _ := db.CreateRelation("R", prefcqa.IntAttr("K"), prefcqa.IntAttr("V"))
	a := r.MustInsert(1, 10)
	b := r.MustInsert(1, 20)
	_ = r.AddFD("K -> V")
	_ = r.Prefer(a, b)

	all, _ := db.CountRepairs(prefcqa.Rep, "R")
	preferred, _ := db.CountRepairs(prefcqa.Global, "R")
	fmt.Println(all, preferred)
	// Output: 2 1
}

// Algorithm 1: winnow-driven cleaning under preferences.
func ExampleDB_Clean() {
	db := prefcqa.New()
	r, _ := db.CreateRelation("R", prefcqa.IntAttr("K"), prefcqa.IntAttr("V"))
	a := r.MustInsert(1, 10)
	b := r.MustInsert(1, 20)
	r.MustInsert(2, 30)
	_ = r.AddFD("K -> V")
	_ = r.Prefer(b, a) // prefer the V=20 row

	cleaned, _ := db.Clean("R")
	fmt.Println(cleaned.Len())
	fmt.Println(cleaned.Contains(prefcqa.Tuple{prefcqa.Int(1), prefcqa.Int(20)}))
	// Output:
	// 2
	// true
}

// Tuning the evaluation engine: WithParallelism shards conflict-graph
// components across workers and WithCache memoizes per-component
// repair choices. Every configuration returns identical answers —
// only the speed changes.
func ExampleWithParallelism() {
	db := prefcqa.New(prefcqa.WithParallelism(4), prefcqa.WithCache(true))
	sensors, _ := db.CreateRelation("Sensor",
		prefcqa.IntAttr("ID"), prefcqa.IntAttr("Reading"))
	for i := 0; i < 6; i++ {
		sensors.MustInsert(i, 0) // two conflicting readings
		sensors.MustInsert(i, 1) // per sensor: 6 components
	}
	_ = sensors.AddFD("ID -> Reading")

	n, _ := db.CountRepairs(prefcqa.Rep, "Sensor")
	fmt.Println(n, "repairs")

	certain, _ := db.Certain(prefcqa.Rep, "Sensor(0, 0) OR Sensor(0, 1)")
	fmt.Println("certain:", certain)
	// Output:
	// 64 repairs
	// certain: true
}

// Brave vs cautious answers.
func ExampleDB_Possible() {
	db := prefcqa.New()
	r, _ := db.CreateRelation("R", prefcqa.IntAttr("K"), prefcqa.IntAttr("V"))
	r.MustInsert(1, 10)
	r.MustInsert(1, 20)
	_ = r.AddFD("K -> V")

	certain, _ := db.Certain(prefcqa.Rep, "R(1, 10)")
	possible, _ := db.Possible(prefcqa.Rep, "R(1, 10)")
	fmt.Println(certain, possible)
	// Output: false true
}

// ExampleDB_Snapshot shows the mutable-workload model: point
// mutations are folded into the built state incrementally (cost
// proportional to the touched conflict component), while a snapshot
// keeps answering from its pinned version.
func ExampleDB_Snapshot() {
	db := prefcqa.New()
	inv, _ := db.CreateRelation("Inv", prefcqa.IntAttr("SKU"), prefcqa.IntAttr("Qty"))
	_ = inv.AddFD("SKU -> Qty")

	a := inv.MustInsert(1, 10) // two feeds disagree on SKU 1
	b := inv.MustInsert(1, 12)
	_ = inv.Prefer(a, b) // trust the first feed

	snap, _ := db.Snapshot() // pin this version

	inv.Delete(a) // a correction arrives: replace the trusted tuple
	c := inv.MustInsert(1, 17)
	_ = inv.Prefer(c, b)

	now, _ := db.Query(prefcqa.Global, "Inv(1, 17)")
	then, _ := snap.Query(prefcqa.Global, "Inv(1, 17)")
	pinned, _ := snap.Query(prefcqa.Global, "Inv(1, 10)")
	fmt.Println(now, then, pinned)
	// Output: true false true
}

// ExampleDB_ExplainPlan renders the physical plan the query planner
// chooses: access path per atom (secondary-index probe vs scan),
// join order, and estimated vs actual candidate rows.
func ExampleDB_ExplainPlan() {
	db := prefcqa.New()
	mgr, _ := db.CreateRelation("Mgr",
		prefcqa.NameAttr("Name"), prefcqa.NameAttr("Dept"), prefcqa.IntAttr("Salary"))
	mgr.MustInsert("Mary", "R&D", 40)
	mgr.MustInsert("John", "R&D", 10)
	mgr.MustInsert("Mary", "IT", 20)

	rep, _ := db.ExplainPlan("EXISTS d, s . Mgr('Mary', d, s) AND s > 30")
	fmt.Println(rep)
	// Output:
	// query: EXISTS d, s . Mgr('Mary', d, s) AND s > 30
	// mode: indexed; holds on full instance: true
	// plan 1: EXISTS d, s [exec vectorized-greedy; cost yannakakis 2 vs greedy 2]
	//   1. Mgr('Mary', d, s)  index(Name='Mary')  est 2 act 1  [batches 1 ids 1 out 1]  binds d, s
	//   residual: s > 30
}
