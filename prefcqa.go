// Package prefcqa is a library for preference-driven querying of
// inconsistent relational databases, implementing Staworko, Chomicki
// and Marcinkowski, "Preference-Driven Querying of Inconsistent
// Relational Databases" (EDBT 2006 Workshops).
//
// A database may violate its functional dependencies (e.g. after
// integrating autonomous sources). Instead of cleaning it — deleting
// tuples and losing information — the library answers queries with
// certainty semantics over the database's repairs (maximal consistent
// subsets), optionally narrowed by user preferences between
// conflicting tuples to one of the paper's preferred-repair families:
//
//	Rep     all repairs (classic consistent query answers)
//	Local   L-Rep: locally optimal repairs
//	SemiGlobal S-Rep: semi-globally optimal repairs
//	Global  G-Rep: globally optimal repairs
//	Common  C-Rep: outcomes of the winnow-based cleaning (Algorithm 1)
//
// Quick start:
//
//	db := prefcqa.New()
//	mgr, _ := db.CreateRelation("Mgr",
//	    prefcqa.NameAttr("Name"), prefcqa.NameAttr("Dept"),
//	    prefcqa.IntAttr("Salary"), prefcqa.IntAttr("Reports"))
//	mary, _ := mgr.Insert("Mary", "R&D", 40, 3)
//	john, _ := mgr.Insert("John", "R&D", 10, 2)
//	_ = mgr.AddFD("Dept -> Name, Salary, Reports")
//	_ = mgr.Prefer(mary, john) // resolve their conflict toward Mary
//	ans, _ := db.Query(prefcqa.Global,
//	    "EXISTS d, s, r . Mgr('Mary', d, s, r)")
//	fmt.Println(ans) // true / false / undetermined
package prefcqa

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"prefcqa/internal/axioms"
	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/conflict"
	"prefcqa/internal/core"
	"prefcqa/internal/cqa"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
	"prefcqa/internal/wal"
)

// Core data-model types, re-exported from the engine.
type (
	// Value is a typed constant: a name (domain D) or an integer
	// (domain N).
	Value = relation.Value
	// Tuple is one row of a relation.
	Tuple = relation.Tuple
	// TupleID identifies an inserted tuple within its relation.
	TupleID = relation.TupleID
	// Attribute is a named, typed column.
	Attribute = relation.Attribute
	// Schema describes a relation.
	Schema = relation.Schema
	// Instance is a set of tuples over one schema.
	Instance = relation.Instance
	// Binding is one certain answer to an open query.
	Binding = cqa.Binding
	// Family selects a preferred-repair family.
	Family = core.Family
	// Answer is a three-valued consistent-query-answer verdict.
	Answer = cqa.Answer
	// AxiomReport records which of P1-P4 held on probing.
	AxiomReport = axioms.Report
)

// The preferred-repair families (§3 of the paper).
const (
	Rep        = core.Rep
	Local      = core.Local
	SemiGlobal = core.SemiGlobal
	Global     = core.Global
	Common     = core.Common
)

// Three-valued answers.
const (
	True         = cqa.CertainlyTrue
	False        = cqa.CertainlyFalse
	Undetermined = cqa.Undetermined
)

// Name builds a name constant (domain D).
func Name(s string) Value { return relation.Name(s) }

// Int builds an integer constant (domain N).
func Int(i int64) Value { return relation.Int(i) }

// NameAttr declares a name-typed attribute.
func NameAttr(name string) Attribute { return relation.NameAttr(name) }

// IntAttr declares an integer-typed attribute.
func IntAttr(name string) Attribute { return relation.IntAttr(name) }

// ParseFamily parses a family name such as "rep", "local", "g-rep".
func ParseFamily(s string) (Family, error) { return core.ParseFamily(s) }

// NewSchema builds a relation schema.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	return relation.NewSchema(name, attrs...)
}

// NewInstance returns an empty instance of the schema.
func NewInstance(schema *Schema) *Instance { return relation.NewInstance(schema) }

// MakeTuple coerces native Go values (string → name, integer types →
// int, Value passed through) into a Tuple — the row-building
// companion of the client package's Insert.
func MakeTuple(vals ...any) (Tuple, error) { return relation.CoerceTuple(vals...) }

// Wire types of the JSON codec (see EncodeWire / DecodeWire): the
// value- and instance-level encoding of the prefserve protocol.
type (
	// WireAttr is one attribute of a wire-encoded schema.
	WireAttr = relation.WireAttr
	// WireInstance is the JSON wire form of a relation instance.
	WireInstance = relation.WireInstance
)

// EncodeWire encodes an instance's schema and live tuples for the
// JSON wire; DecodeWire is the inverse. Cells use the textual
// constant syntax of Value.String (integers bare, names
// single-quoted), so every value round-trips exactly.
func EncodeWire(inst *Instance) WireInstance { return relation.EncodeWire(inst) }

// DecodeWire rebuilds an instance from its wire form; tuple IDs are
// assigned densely in row order.
func DecodeWire(w WireInstance) (*Instance, error) { return relation.DecodeWire(w) }

// EncodeValue renders a value in the wire cell syntax; DecodeValue
// parses one against an attribute kind ("name" or "int" — see
// Attribute.Kind), rejecting mismatches.
func EncodeValue(v Value) string { return relation.EncodeValue(v) }

// DecodeValue parses a wire cell against the attribute kind of the
// column it belongs to.
func DecodeValue(kind relation.Kind, cell string) (Value, error) {
	return relation.DecodeValue(kind, cell)
}

// ReadCSV parses an instance from CSV with a typed header
// ("attr:kind" cells, kind ∈ {name, int}); see WriteCSV for the
// inverse. This is the on-disk format of the cmd tools.
func ReadCSV(relName string, src io.Reader) (*Instance, error) {
	return relation.ReadCSV(relName, src)
}

// WriteCSV writes an instance in the format ReadCSV accepts.
func WriteCSV(dst io.Writer, inst *Instance) error { return relation.WriteCSV(dst, inst) }

// DB is a database of possibly-inconsistent relations with
// per-relation functional dependencies and tuple preferences.
//
// Query evaluation runs on a parallel engine: per-component repair
// choice sets are sharded across a worker pool and, by default,
// memoized across queries (see WithParallelism and WithCache). All
// engine configurations return identical results.
//
// Formula evaluation is plan-based: existential conjunctions compile
// into a physical plan with index access paths — equality probes of
// per-attribute secondary indexes, built lazily and maintained
// incrementally through mutations — and selectivity-ordered joins
// (see WithIndexes and ExplainPlan). Planned, scan-only and naive
// evaluation return identical answers.
//
// Mutations (Insert, Delete, Prefer) are maintained incrementally:
// instead of rebuilding the conflict graph, priority and component
// index, the next read applies the pending batch as a delta — cost
// proportional to the touched components, not the instance — and
// publishes a fresh immutable version with an atomic swap. Tuple
// mutations and queries on existing relations are therefore safe to
// run concurrently; readers always see a consistent published
// version, and Snapshot pins one for repeated reads. Creating
// relations (CreateRelation, AddInstance) concurrently with use is
// not synchronized: register all relations first.
type DB struct {
	rels   map[string]*Relation
	order  []string
	engine *core.Engine
	snapMu sync.RWMutex // see Relation.snap

	// log is the write-ahead log of a durable DB (see Open); nil on an
	// in-memory DB. ver is the in-memory write-version counter; on a
	// durable DB the log's record sequence is the write-version. See
	// WriteVersion.
	log      *wal.Log
	ver      atomic.Uint64
	walOpts  wal.Options
	ckptBusy atomic.Bool // gates automatic checkpoints to one at a time

	// readOnly marks a replication follower: public mutations are
	// refused (ErrReadOnly) while ReplApply keeps feeding the replicated
	// history in. Promote clears it. epoch is the in-memory replication
	// epoch; durable DBs track the epoch in the log instead. See Epoch.
	readOnly atomic.Bool
	epoch    atomic.Uint64

	parallelism int
	cache       bool
	incremental bool
	indexes     bool

	// stats aggregates open-query path and spine-executor counters
	// across direct queries and snapshots; see QueryStats.
	stats *cqa.EvalStats
}

// Option configures a DB at construction time.
type Option func(*DB)

// WithParallelism sets how many workers evaluate conflict-graph
// components concurrently. n == 1 evaluates sequentially on the
// calling goroutine; n <= 0 (the default) uses runtime.GOMAXPROCS.
// Results are identical for every setting.
func WithParallelism(n int) Option {
	return func(db *DB) { db.parallelism = n }
}

// WithCache enables or disables memoization of per-component repair
// choice sets (default on). Cached entries are keyed by the component
// structure and preference orientation, so structurally identical
// components — within one instance or across repeated queries — are
// evaluated once.
func WithCache(on bool) Option {
	return func(db *DB) { db.cache = on }
}

// WithIndexes enables or disables index access paths in query
// evaluation (default on). When on, the query planner answers
// selective atoms by equality probes of per-attribute secondary
// indexes — built lazily on first use and maintained incrementally
// through mutations — instead of scanning the relation. When off,
// every atom scans. Results are identical for both settings; see
// DB.ExplainPlan for the chosen access paths.
func WithIndexes(on bool) Option {
	return func(db *DB) { db.indexes = on }
}

// WithIncremental enables or disables delta maintenance of the
// conflict graph, priority and component index across mutations
// (default on). When disabled, every mutation invalidates the built
// state and the next read rebuilds it from scratch — the baseline the
// mutation benchmarks compare against. Results are identical for both
// settings.
func WithIncremental(on bool) Option {
	return func(db *DB) { db.incremental = on }
}

// New returns an empty database. With no options the evaluation
// engine uses a GOMAXPROCS-sized worker pool with memoization on, and
// mutations are maintained incrementally.
func New(opts ...Option) *DB {
	db := &DB{rels: make(map[string]*Relation), parallelism: 0, cache: true, incremental: true, indexes: true, stats: &cqa.EvalStats{}}
	db.epoch.Store(1)
	for _, opt := range opts {
		opt(db)
	}
	db.engine = core.NewEngine(core.WithWorkers(db.parallelism), core.WithMemo(db.cache))
	return db
}

// Relation is one relation of the database together with its
// dependencies and preferences.
//
// The built evaluation state (conflict graph, priority, component
// index) is versioned: reads load the latest published version from
// an atomic pointer, mutations accumulate a pending delta that the
// next read applies and publishes. Published versions are immutable,
// so readers never block writers and a Snapshot stays consistent
// indefinitely.
type Relation struct {
	// snap is the owning DB's snapshot gate: mutators hold its read
	// side, DB.Snapshot the write side, making a snapshot a true
	// point-in-time cut across all relations. Acquired before mu.
	snap *sync.RWMutex
	db   *DB
	name string

	mu           sync.Mutex // guards all writer state below
	inst         *relation.Instance
	fds          *fd.Set
	prefs        [][2]TupleID
	prefSeen     map[[2]TupleID]bool
	prefsPruneAt int  // next len(prefs) at which dead pairs are pruned
	forked       bool // inst is a private fork ahead of the published version
	pend         pendingDelta
	incremental  bool

	cur    atomic.Pointer[cqa.Relation] // latest published built state
	dirty  atomic.Bool                  // pending mutations since the last publish
	counts *core.CountCache             // per-component repair counts, era-keyed
}

// pendingDelta is the batch of mutations since the last publish.
// A tuple inserted and deleted within one batch appears in both
// lists, inserts first — the graph delta wires it in and back out.
type pendingDelta struct {
	inserts []TupleID
	deletes []TupleID
	prefs   [][2]TupleID
	rebuild bool // fall back to a full rebuild (AddFD, failed delta)
}

func (p *pendingDelta) dirty() bool {
	return p.rebuild || len(p.inserts)+len(p.deletes)+len(p.prefs) > 0
}

func (db *DB) newRelation(name string, inst *relation.Instance, fds *fd.Set) *Relation {
	return &Relation{
		snap: &db.snapMu,
		db:   db,
		name: name,
		inst: inst, fds: fds,
		prefSeen:    make(map[[2]TupleID]bool),
		incremental: db.incremental,
		counts:      core.NewCountCache(),
	}
}

// CreateRelation adds an empty relation with the given schema.
func (db *DB) CreateRelation(name string, attrs ...Attribute) (*Relation, error) {
	r, seq, err := db.createRelation(name, attrs)
	if err != nil {
		return nil, err
	}
	return r, db.commit(seq)
}

func (db *DB) createRelation(name string, attrs []Attribute) (*Relation, uint64, error) {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if _, dup := db.rels[name]; dup {
		return nil, 0, fmt.Errorf("prefcqa: relation %q already exists", name)
	}
	schema, err := relation.NewSchema(name, attrs...)
	if err != nil {
		return nil, 0, err
	}
	fds, err := fd.NewSet(schema)
	if err != nil {
		return nil, 0, err
	}
	seq, err := db.logAppend(func() wal.Record {
		return wal.Record{Op: wal.OpCreate, Rel: name, Attrs: wireAttrs(schema)}
	})
	if err != nil {
		return nil, 0, err
	}
	r := db.newRelation(name, relation.NewInstance(schema), fds)
	db.rels[name] = r
	db.order = append(db.order, name)
	return r, seq, nil
}

// AddInstance registers an existing instance (with no dependencies
// yet) under its schema name. On a durable DB the instance's whole
// tuple universe — including tombstones, which anchor the ID
// assignment — is logged as one creation record.
func (db *DB) AddInstance(inst *Instance) (*Relation, error) {
	r, seq, err := db.addInstance(inst)
	if err != nil {
		return nil, err
	}
	return r, db.commit(seq)
}

func (db *DB) addInstance(inst *Instance) (*Relation, uint64, error) {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	name := inst.Schema().Name()
	if _, dup := db.rels[name]; dup {
		return nil, 0, fmt.Errorf("prefcqa: relation %q already exists", name)
	}
	fds, err := fd.NewSet(inst.Schema())
	if err != nil {
		return nil, 0, err
	}
	seq, err := db.logAppend(func() wal.Record {
		rec := wal.Record{Op: wal.OpCreate, Rel: name, Attrs: wireAttrs(inst.Schema())}
		rec.Rows = make([][]string, inst.NumIDs())
		for id := 0; id < inst.NumIDs(); id++ {
			rec.Rows[id] = encodeRow(inst.Tuple(id))
			if !inst.Live(id) {
				rec.IDs = append(rec.IDs, id)
			}
		}
		return rec
	})
	if err != nil {
		return nil, 0, err
	}
	r := db.newRelation(name, inst, fds)
	db.rels[name] = r
	db.order = append(db.order, name)
	return r, seq, nil
}

// Relation returns a previously created relation.
func (db *DB) Relation(name string) (*Relation, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// Relations lists the relation names in creation order.
func (db *DB) Relations() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inst.Schema()
}

// Instance returns the relation's current (possibly inconsistent)
// instance: the latest published version, after folding in any
// pending mutations. The result is an immutable version, safe to
// read while writers continue mutating the relation. If the built
// state cannot be constructed (e.g. contradictory preferences), the
// writer's working instance is returned instead; that fallback is
// only safe without concurrent mutation.
func (r *Relation) Instance() *Instance {
	if built, err := r.build(); err == nil {
		return built.Inst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inst
}

// beginMutate forks the instance away from the published version on
// the first mutation of a batch, so readers of the published version
// keep a consistent view. Caller holds r.mu.
func (r *Relation) beginMutate() {
	if r.cur.Load() != nil && !r.forked {
		r.inst = r.inst.Fork()
		r.forked = true
	}
}

// Insert adds a row from native Go values (string → name, integer
// types → int) and returns its tuple ID. Duplicate inserts return
// the existing ID (set semantics) without touching any state. On a
// durable DB the row is logged before it is applied and the call
// blocks on the configured durability barrier.
func (r *Relation) Insert(vals ...any) (TupleID, error) {
	tup, err := relation.CoerceTuple(vals...)
	if err != nil {
		return -1, err
	}
	id, seq, err := r.insertTuple(tup)
	if err != nil {
		return id, err
	}
	return id, r.db.commit(seq)
}

// insertTuple applies one insert under the locks: validate, log,
// apply — in that order, so a logged row is always an applied row.
func (r *Relation) insertTuple(tup Tuple) (TupleID, uint64, error) {
	r.snap.RLock()
	defer r.snap.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.inst.Lookup(tup); ok {
		return id, 0, nil // duplicate: no mutation, no fork
	}
	if err := r.inst.TypeCheck(tup); err != nil {
		return -1, 0, err
	}
	seq, err := r.db.logAppend(func() wal.Record {
		return wal.Record{Op: wal.OpInsert, Rel: r.name, Rows: [][]string{encodeRow(tup)}}
	})
	if err != nil {
		return -1, 0, err
	}
	r.beginMutate()
	id, _, err := r.inst.Insert(tup) // validated fresh above: always applies
	if err != nil {
		return id, 0, err
	}
	if r.cur.Load() != nil {
		r.pend.inserts = append(r.pend.inserts, id)
	}
	r.dirty.Store(true)
	return id, seq, nil
}

// InsertRows inserts a batch of rows under one lock acquisition and —
// on a durable DB — one log record and one durability barrier, so a
// large batch costs one fsync instead of one per row. It returns one
// tuple ID per input row; duplicates (against the relation or within
// the batch) resolve to the first occurrence's ID, as in Insert.
func (r *Relation) InsertRows(rows []Tuple) ([]TupleID, error) {
	ids, seq, err := r.insertRows(rows)
	if err != nil {
		return nil, err
	}
	return ids, r.db.commit(seq)
}

func (r *Relation) insertRows(rows []Tuple) ([]TupleID, uint64, error) {
	r.snap.RLock()
	defer r.snap.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, tup := range rows {
		if err := r.inst.TypeCheck(tup); err != nil {
			return nil, 0, fmt.Errorf("row %d: %w", i, err)
		}
	}
	// Partition the batch: rows already present resolve immediately,
	// the rest dedupe against each other so the log carries exactly the
	// rows that will apply fresh.
	ids := make([]TupleID, len(rows))
	var freshIdx []int            // indexes into rows, in apply order
	byKey := make(map[string]int) // batch-local tuple key → freshIdx position
	ref := make([]int, len(rows)) // per row: freshIdx position, or -1 when resolved
	for i, tup := range rows {
		if id, ok := r.inst.Lookup(tup); ok {
			ids[i] = id
			ref[i] = -1
			continue
		}
		k := tup.Key()
		if p, ok := byKey[k]; ok {
			ref[i] = p
			continue
		}
		p := len(freshIdx)
		byKey[k] = p
		freshIdx = append(freshIdx, i)
		ref[i] = p
	}
	if len(freshIdx) == 0 {
		return ids, 0, nil
	}
	seq, err := r.db.logAppend(func() wal.Record {
		enc := make([][]string, len(freshIdx))
		for p, i := range freshIdx {
			enc[p] = encodeRow(rows[i])
		}
		return wal.Record{Op: wal.OpInsert, Rel: r.name, Rows: enc}
	})
	if err != nil {
		return nil, 0, err
	}
	r.beginMutate()
	freshIDs := make([]TupleID, len(freshIdx))
	for p, i := range freshIdx {
		id, _, err := r.inst.Insert(rows[i]) // validated fresh above: always applies
		if err != nil {
			return nil, 0, err
		}
		freshIDs[p] = id
		if r.cur.Load() != nil {
			r.pend.inserts = append(r.pend.inserts, id)
		}
	}
	r.dirty.Store(true)
	for i := range rows {
		if ref[i] >= 0 {
			ids[i] = freshIDs[ref[i]]
		}
	}
	return ids, seq, nil
}

// MustInsert is Insert that panics on error, for fixtures.
func (r *Relation) MustInsert(vals ...any) TupleID {
	id, err := r.Insert(vals...)
	if err != nil {
		panic(err)
	}
	return id
}

// Delete tombstones the tuple with the given ID and reports whether
// it was live. Other tuple IDs are unchanged; preferences touching
// the tuple are dropped from the built priority. The built state is
// patched, not rebuilt: cost is proportional to the tuple's conflict
// component. The error is nil on an in-memory DB; on a durable DB it
// reports a failed log write or durability barrier.
func (r *Relation) Delete(id TupleID) (bool, error) {
	ok, seq, err := r.deleteTuple(id)
	if !ok || err != nil {
		return false, err
	}
	return true, r.db.commit(seq)
}

func (r *Relation) deleteTuple(id TupleID) (bool, uint64, error) {
	r.snap.RLock()
	defer r.snap.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.inst.Live(id) {
		return false, 0, nil
	}
	seq, err := r.db.logAppend(func() wal.Record {
		return wal.Record{Op: wal.OpDelete, Rel: r.name, IDs: []int{id}}
	})
	if err != nil {
		return false, 0, err
	}
	r.beginMutate()
	r.inst.Delete(id)
	if r.cur.Load() != nil {
		r.pend.deletes = append(r.pend.deletes, id)
	}
	r.dirty.Store(true)
	return true, seq, nil
}

// AddFD declares a functional dependency, e.g. "Dept -> Name, Salary".
// Unlike tuple-level mutations, adding a dependency rebuilds the
// conflict graph from scratch on the next read.
func (r *Relation) AddFD(spec string) error {
	seq, err := r.addFD(spec)
	if err != nil {
		return err
	}
	return r.db.commit(seq)
}

func (r *Relation) addFD(spec string) (uint64, error) {
	r.snap.RLock()
	defer r.snap.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	f, err := fd.Parse(r.inst.Schema(), spec)
	if err != nil {
		return 0, err
	}
	// Replace rather than mutate the dependency set: the published
	// version keeps referencing the old one.
	nfds, err := fd.NewSet(r.inst.Schema(), append(r.fds.All(), f)...)
	if err != nil {
		return 0, err
	}
	// Log the normalized rendering, not the raw spec: FD.String
	// round-trips through fd.Parse on replay.
	seq, err := r.db.logAppend(func() wal.Record {
		return wal.Record{Op: wal.OpFD, Rel: r.name, FD: f.String()}
	})
	if err != nil {
		return 0, err
	}
	r.fds = nfds
	r.pend.rebuild = true
	r.dirty.Store(true)
	return seq, nil
}

// FDs renders the declared dependencies.
func (r *Relation) FDs() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fds.String()
}

// Prefer records that tuple x should win its conflict against tuple
// y (x ≻ y). Following Definition 2, pairs of non-conflicting tuples
// are accepted and ignored; contradictory or cyclic preferences are
// reported when the priority is built. Duplicate pairs are recorded
// once.
func (r *Relation) Prefer(x, y TupleID) error {
	seq, err := r.preferPairs([][2]TupleID{{x, y}}, true)
	if err != nil {
		return err
	}
	return r.db.commit(seq)
}

// preferPairs validates, logs and applies a batch of preference
// pairs under the locks. With mustLive set, a pair touching a
// non-live tuple is an error (the Prefer contract); otherwise such
// pairs are skipped (PreferByRank derives pairs from a built state a
// concurrent writer may since have deleted from). Only pairs that are
// both live and fresh reach the log — a logged pair is exactly an
// applied pair, which is what makes strict replay possible.
func (r *Relation) preferPairs(pairs [][2]TupleID, mustLive bool) (uint64, error) {
	r.snap.RLock()
	defer r.snap.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	fresh := make([][2]TupleID, 0, len(pairs))
	batchSeen := make(map[[2]TupleID]bool, len(pairs))
	for _, p := range pairs {
		if !r.inst.Live(p[0]) || !r.inst.Live(p[1]) {
			if mustLive {
				return 0, fmt.Errorf("prefcqa: preference on unknown tuple IDs (%d, %d)", p[0], p[1])
			}
			continue
		}
		if !r.prefSeen[p] && !batchSeen[p] {
			batchSeen[p] = true
			fresh = append(fresh, p)
		}
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	seq, err := r.db.logAppend(func() wal.Record {
		return wal.Record{Op: wal.OpPrefer, Rel: r.name, Pairs: fresh}
	})
	if err != nil {
		return 0, err
	}
	for _, p := range fresh {
		r.preferLocked(p[0], p[1])
	}
	return seq, nil
}

// preferLocked records x ≻ y, deduplicating. Caller holds r.mu.
func (r *Relation) preferLocked(x, y TupleID) {
	pair := [2]TupleID{x, y}
	if r.prefSeen[pair] {
		return
	}
	r.prefSeen[pair] = true
	r.prefs = append(r.prefs, pair)
	if r.cur.Load() != nil {
		r.pend.prefs = append(r.pend.prefs, pair)
	}
	r.dirty.Store(true)
}

// PreferByRank derives preferences from a rank function (smaller rank
// = more trusted, e.g. source reliability or recency): every conflict
// between tuples of different ranks is oriented toward the smaller
// rank. Rank-derived preferences are recorded alongside any explicit
// Prefer pairs (duplicates are dropped, so PreferByRank is
// idempotent); a contradiction between the two surfaces as an error
// on the next query or repair operation.
//
// The rank callback runs without the relation lock held, so it may
// read the relation (Instance, ExplainTuple, ...). Conflicts are
// taken from the state observed on entry; pairs whose tuples are
// deleted by a concurrent writer before the pairs are recorded are
// skipped (a preference on a tombstoned tuple can never matter again
// — IDs are not reused).
func (r *Relation) PreferByRank(rank func(TupleID) int) error {
	r.mu.Lock()
	built, err := r.materializeLocked()
	if err != nil {
		r.mu.Unlock()
		return err
	}
	edges := built.Pri.Graph().Edges()
	r.mu.Unlock()
	pairs := make([][2]TupleID, 0, len(edges))
	for _, e := range edges {
		ra, rb := rank(e.A), rank(e.B)
		switch {
		case ra < rb:
			pairs = append(pairs, [2]TupleID{e.A, e.B})
		case rb < ra:
			pairs = append(pairs, [2]TupleID{e.B, e.A})
		}
	}
	seq, err := r.preferPairs(pairs, false)
	if err != nil {
		return err
	}
	return r.db.commit(seq)
}

// build returns the up-to-date built state, applying any pending
// delta (or rebuilding, when required) and publishing the result.
// With nothing pending the fast path is two atomic loads and no lock,
// so readers of a clean relation never contend with each other or
// with a writer mid-batch — they simply observe the latest published
// version.
func (r *Relation) build() (*cqa.Relation, error) {
	// Order matters: publishLocked stores cur before clearing dirty,
	// so observing dirty == false guarantees the subsequent cur load
	// sees (at least) the version that batch produced — a goroutine
	// always reads its own completed writes.
	if !r.dirty.Load() {
		if st := r.cur.Load(); st != nil {
			return st, nil
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.materializeLocked()
}

// incrementalTooBig decides when a pending batch is too large for
// delta application: beyond a quarter of the instance a rebuild's
// better constants win.
func (r *Relation) incrementalTooBig(st *cqa.Relation) bool {
	return len(r.pend.inserts)+len(r.pend.deletes) > 64+st.Inst.Len()/4
}

// materializeLocked applies the pending mutation batch to the latest
// published version — delta maintenance when possible, full rebuild
// when demanded (first build, AddFD, oversized batch) — and publishes
// the new version. Caller holds r.mu. On error the pending batch is
// retained and the published version stays; subsequent reads retry
// and report the same error, mirroring the former rebuild-on-read
// semantics.
func (r *Relation) materializeLocked() (*cqa.Relation, error) {
	st := r.cur.Load()
	if st != nil && !r.pend.dirty() {
		return st, nil
	}
	if st == nil || r.pend.rebuild || !r.incremental || r.incrementalTooBig(st) {
		return r.rebuildLocked()
	}
	g2, _, err := st.Pri.Graph().ApplyDelta(r.inst, conflict.Delta{Inserts: r.pend.inserts, Deletes: r.pend.deletes})
	if err != nil {
		// Assertion failure in the delta plumbing: recover via rebuild.
		return r.rebuildLocked()
	}
	p2 := st.Pri.Rebase(g2)
	for _, v := range r.pend.deletes {
		p2.DropVertex(v)
	}
	// Orientation changes do not alter component membership, but they
	// dirty the per-component caches: retire each touched component ID
	// once, after all pairs are applied.
	touched := make(map[int]TupleID)
	for _, pr := range r.pend.prefs {
		if !g2.Adjacent(pr[0], pr[1]) {
			continue // non-conflicting (or deleted) pair: ignored, as in FromRelation
		}
		if p2.Dominates(pr[0], pr[1]) {
			continue
		}
		if err := p2.Add(pr[0], pr[1]); err != nil {
			// The failed batch has already mutated the writer-side
			// partner index; route the (equally failing) retries
			// through the rebuild path, which starts a fresh one.
			r.pend.rebuild = true
			return nil, err
		}
		cid := g2.ComponentOf(pr[0])
		if _, ok := touched[cid]; !ok {
			touched[cid] = pr[0]
		}
	}
	for _, v := range touched {
		g2.Touch(v)
	}
	newSt := &cqa.Relation{Inst: r.inst, FDs: st.FDs, Pri: p2}
	r.publishLocked(newSt)
	return newSt, nil
}

// rebuildLocked reconstructs the built state from scratch on the
// current instance and publishes it.
func (r *Relation) rebuildLocked() (*cqa.Relation, error) {
	rel, err := cqa.NewRelation(r.inst, r.fds)
	if err != nil {
		return nil, err
	}
	pri, err := priority.FromRelation(rel.Pri.Graph(), r.prefs)
	if err != nil {
		return nil, err
	}
	rel.Pri = pri
	r.publishLocked(rel)
	return rel, nil
}

// publishLocked swaps in the new version and clears the batch. It
// also prunes the recorded preference history once it doubles since
// the last prune: pairs touching tombstoned tuples can never matter
// again (IDs are never reused), so dropping them keeps r.prefs — and
// the cost of any future full rebuild — proportional to the live
// instance instead of the total mutation history.
func (r *Relation) publishLocked(st *cqa.Relation) {
	r.cur.Store(st)
	r.pend = pendingDelta{}
	r.forked = false
	r.dirty.Store(false)
	if len(r.prefs) > 64 && len(r.prefs) >= r.prefsPruneAt {
		kept := r.prefs[:0]
		for _, p := range r.prefs {
			if r.inst.Live(p[0]) && r.inst.Live(p[1]) {
				kept = append(kept, p)
			} else {
				delete(r.prefSeen, p)
			}
		}
		r.prefs = kept
		r.prefsPruneAt = 2 * len(kept)
	}
}

// Graph returns the relation's conflict graph (built on demand).
func (r *Relation) Graph() (*conflict.Graph, error) {
	built, err := r.build()
	if err != nil {
		return nil, err
	}
	return built.Pri.Graph(), nil
}

// Conflicts returns the number of conflicting tuple pairs.
func (r *Relation) Conflicts() (int, error) {
	g, err := r.Graph()
	if err != nil {
		return 0, err
	}
	return g.NumEdges(), nil
}

// Consistent reports whether the relation satisfies its dependencies.
func (r *Relation) Consistent() (bool, error) {
	n, err := r.Conflicts()
	return n == 0, err
}

// EngineStats returns the evaluation engine's cumulative choice-set
// cache hit and miss counts (both zero with WithCache(false)) — the
// numbers behind the serving layer's /v1/stats endpoint.
func (db *DB) EngineStats() (hits, misses int64) {
	return db.engine.CacheStats()
}

// QueryStats returns the cumulative query path counters: how many
// open queries were answered by direct spine enumeration vs
// active-domain substitution, which vectorized executor (generic
// join, Yannakakis, greedy) ran the direct spines, and how many
// closed verifications took the component-pruned repair walk vs the
// full whole-database enumeration. Snapshots taken from this DB feed
// the same counters.
func (db *DB) QueryStats() cqa.EvalStatsSnapshot {
	return db.stats.Snapshot()
}

// input assembles the cqa.Input across all relations.
func (db *DB) input() (cqa.Input, error) {
	rels := make([]*cqa.Relation, 0, len(db.order))
	for _, name := range db.order {
		built, err := db.rels[name].build()
		if err != nil {
			return cqa.Input{}, fmt.Errorf("prefcqa: relation %s: %w", name, err)
		}
		rels = append(rels, built)
	}
	in, err := cqa.NewInput(rels...)
	if err != nil {
		return cqa.Input{}, err
	}
	return in.WithEngine(db.engine).WithScanOnly(!db.indexes).WithStats(db.stats), nil
}

// Query evaluates a closed first-order query under the family's
// preferred-repair semantics and returns true, false or undetermined.
func (db *DB) Query(f Family, src string) (Answer, error) {
	q, err := query.Parse(src)
	if err != nil {
		return 0, err
	}
	in, err := db.input()
	if err != nil {
		return 0, err
	}
	return cqa.Evaluate(f, in, q)
}

// Certain reports whether true is the f-consistent answer to the
// closed query.
func (db *DB) Certain(f Family, src string) (bool, error) {
	a, err := db.Query(f, src)
	if err != nil {
		return false, err
	}
	return a == True, nil
}

// Possible reports whether the closed query holds in at least one
// preferred repair of the family (brave semantics).
func (db *DB) Possible(f Family, src string) (bool, error) {
	a, err := db.Query(f, src)
	if err != nil {
		return false, err
	}
	return a != False, nil
}

// QueryOpen evaluates an open query (free variables allowed) and
// returns its certain answers: the bindings under which the query
// holds in every preferred repair.
func (db *DB) QueryOpen(f Family, src string) ([]Binding, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	in, err := db.input()
	if err != nil {
		return nil, err
	}
	return cqa.FreeAnswers(f, in, q)
}

// Repairs materializes the family's preferred repairs of one relation
// as instances. Use CountRepairs first — the result can be
// exponential.
func (db *DB) Repairs(f Family, rel string) ([]*Instance, error) {
	r, ok := db.rels[rel]
	if !ok {
		return nil, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return nil, err
	}
	var out []*Instance
	db.engine.Enumerate(f, built.Pri, func(s *bitset.Set) bool { //nolint:errcheck // never stops
		out = append(out, built.Inst.Subset(s))
		return true
	})
	return out, nil
}

// CountRepairs returns the number of preferred repairs of a relation.
func (db *DB) CountRepairs(f Family, rel string) (int64, error) {
	r, ok := db.rels[rel]
	if !ok {
		return 0, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return 0, err
	}
	return db.engine.CountCached(f, built.Pri, r.counts)
}

// IsPreferredRepair checks whether the given tuple subset of a
// relation is a preferred repair of the family (the repair-checking
// problem of §4.1).
func (db *DB) IsPreferredRepair(f Family, rel string, ids []TupleID) (bool, error) {
	r, ok := db.rels[rel]
	if !ok {
		return false, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return false, err
	}
	return core.Check(f, built.Pri, bitset.FromSlice(ids)), nil
}

// Clean runs Algorithm 1 on the relation: winnow-driven cleaning
// under the recorded preferences, deterministic choice order. The
// result is always a single repair; with total preferences it is the
// unique one (Proposition 1).
func (db *DB) Clean(rel string) (*Instance, error) {
	r, ok := db.rels[rel]
	if !ok {
		return nil, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return nil, err
	}
	return built.Inst.Subset(clean.Deterministic(built.Pri)), nil
}

// CleanNaive runs the naive cleaning baseline the paper argues
// against (§1, §5 [14]): conflicts without a recorded preference drop
// BOTH tuples. The result is consistent but in general not maximal —
// disjunctive information is lost. Provided for comparison with
// Clean and with preferred consistent query answering.
func (db *DB) CleanNaive(rel string) (*Instance, error) {
	r, ok := db.rels[rel]
	if !ok {
		return nil, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return nil, err
	}
	return built.Inst.Subset(clean.Naive(built.Pri)), nil
}

// CheckAxioms probes properties P1-P4 for the family on the
// relation's current priority.
func (db *DB) CheckAxioms(f Family, rel string) (AxiomReport, error) {
	r, ok := db.rels[rel]
	if !ok {
		return AxiomReport{}, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return AxiomReport{}, err
	}
	return axioms.Check(axioms.FromCore(f), built.Pri, axioms.Options{}), nil
}

// ConflictGraphDOT renders the relation's conflict graph in Graphviz
// format.
func (db *DB) ConflictGraphDOT(rel string) (string, error) {
	r, ok := db.rels[rel]
	if !ok {
		return "", fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	g, err := r.Graph()
	if err != nil {
		return "", err
	}
	return g.DOT(), nil
}
