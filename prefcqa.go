// Package prefcqa is a library for preference-driven querying of
// inconsistent relational databases, implementing Staworko, Chomicki
// and Marcinkowski, "Preference-Driven Querying of Inconsistent
// Relational Databases" (EDBT 2006 Workshops).
//
// A database may violate its functional dependencies (e.g. after
// integrating autonomous sources). Instead of cleaning it — deleting
// tuples and losing information — the library answers queries with
// certainty semantics over the database's repairs (maximal consistent
// subsets), optionally narrowed by user preferences between
// conflicting tuples to one of the paper's preferred-repair families:
//
//	Rep     all repairs (classic consistent query answers)
//	Local   L-Rep: locally optimal repairs
//	SemiGlobal S-Rep: semi-globally optimal repairs
//	Global  G-Rep: globally optimal repairs
//	Common  C-Rep: outcomes of the winnow-based cleaning (Algorithm 1)
//
// Quick start:
//
//	db := prefcqa.New()
//	mgr, _ := db.CreateRelation("Mgr",
//	    prefcqa.NameAttr("Name"), prefcqa.NameAttr("Dept"),
//	    prefcqa.IntAttr("Salary"), prefcqa.IntAttr("Reports"))
//	mary, _ := mgr.Insert("Mary", "R&D", 40, 3)
//	john, _ := mgr.Insert("John", "R&D", 10, 2)
//	_ = mgr.AddFD("Dept -> Name, Salary, Reports")
//	_ = mgr.Prefer(mary, john) // resolve their conflict toward Mary
//	ans, _ := db.Query(prefcqa.Global,
//	    "EXISTS d, s, r . Mgr('Mary', d, s, r)")
//	fmt.Println(ans) // true / false / undetermined
package prefcqa

import (
	"fmt"
	"io"
	"sync"

	"prefcqa/internal/axioms"
	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/conflict"
	"prefcqa/internal/core"
	"prefcqa/internal/cqa"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// Core data-model types, re-exported from the engine.
type (
	// Value is a typed constant: a name (domain D) or an integer
	// (domain N).
	Value = relation.Value
	// Tuple is one row of a relation.
	Tuple = relation.Tuple
	// TupleID identifies an inserted tuple within its relation.
	TupleID = relation.TupleID
	// Attribute is a named, typed column.
	Attribute = relation.Attribute
	// Schema describes a relation.
	Schema = relation.Schema
	// Instance is a set of tuples over one schema.
	Instance = relation.Instance
	// Binding is one certain answer to an open query.
	Binding = cqa.Binding
	// Family selects a preferred-repair family.
	Family = core.Family
	// Answer is a three-valued consistent-query-answer verdict.
	Answer = cqa.Answer
	// AxiomReport records which of P1-P4 held on probing.
	AxiomReport = axioms.Report
)

// The preferred-repair families (§3 of the paper).
const (
	Rep        = core.Rep
	Local      = core.Local
	SemiGlobal = core.SemiGlobal
	Global     = core.Global
	Common     = core.Common
)

// Three-valued answers.
const (
	True         = cqa.CertainlyTrue
	False        = cqa.CertainlyFalse
	Undetermined = cqa.Undetermined
)

// Name builds a name constant (domain D).
func Name(s string) Value { return relation.Name(s) }

// Int builds an integer constant (domain N).
func Int(i int64) Value { return relation.Int(i) }

// NameAttr declares a name-typed attribute.
func NameAttr(name string) Attribute { return relation.NameAttr(name) }

// IntAttr declares an integer-typed attribute.
func IntAttr(name string) Attribute { return relation.IntAttr(name) }

// ParseFamily parses a family name such as "rep", "local", "g-rep".
func ParseFamily(s string) (Family, error) { return core.ParseFamily(s) }

// NewSchema builds a relation schema.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	return relation.NewSchema(name, attrs...)
}

// NewInstance returns an empty instance of the schema.
func NewInstance(schema *Schema) *Instance { return relation.NewInstance(schema) }

// ReadCSV parses an instance from CSV with a typed header
// ("attr:kind" cells, kind ∈ {name, int}); see WriteCSV for the
// inverse. This is the on-disk format of the cmd tools.
func ReadCSV(relName string, src io.Reader) (*Instance, error) {
	return relation.ReadCSV(relName, src)
}

// WriteCSV writes an instance in the format ReadCSV accepts.
func WriteCSV(dst io.Writer, inst *Instance) error { return relation.WriteCSV(dst, inst) }

// DB is a database of possibly-inconsistent relations with
// per-relation functional dependencies and tuple preferences.
//
// Query evaluation runs on a parallel engine: per-component repair
// choice sets are sharded across a worker pool and, by default,
// memoized across queries (see WithParallelism and WithCache). All
// engine configurations return identical results. A DB is not safe
// for concurrent mutation; build it first, then query freely.
type DB struct {
	rels   map[string]*Relation
	order  []string
	engine *core.Engine

	parallelism int
	cache       bool
}

// Option configures a DB at construction time.
type Option func(*DB)

// WithParallelism sets how many workers evaluate conflict-graph
// components concurrently. n == 1 evaluates sequentially on the
// calling goroutine; n <= 0 (the default) uses runtime.GOMAXPROCS.
// Results are identical for every setting.
func WithParallelism(n int) Option {
	return func(db *DB) { db.parallelism = n }
}

// WithCache enables or disables memoization of per-component repair
// choice sets (default on). Cached entries are keyed by the component
// structure and preference orientation, so structurally identical
// components — within one instance or across repeated queries — are
// evaluated once.
func WithCache(on bool) Option {
	return func(db *DB) { db.cache = on }
}

// New returns an empty database. With no options the evaluation
// engine uses a GOMAXPROCS-sized worker pool with memoization on.
func New(opts ...Option) *DB {
	db := &DB{rels: make(map[string]*Relation), parallelism: 0, cache: true}
	for _, opt := range opts {
		opt(db)
	}
	db.engine = core.NewEngine(core.WithWorkers(db.parallelism), core.WithMemo(db.cache))
	return db
}

// Relation is one relation of the database together with its
// dependencies and preferences.
type Relation struct {
	inst  *relation.Instance
	fds   *fd.Set
	prefs [][2]TupleID

	mu    sync.Mutex
	built *cqa.Relation // nil when stale; guarded by mu
}

// CreateRelation adds an empty relation with the given schema.
func (db *DB) CreateRelation(name string, attrs ...Attribute) (*Relation, error) {
	if _, dup := db.rels[name]; dup {
		return nil, fmt.Errorf("prefcqa: relation %q already exists", name)
	}
	schema, err := relation.NewSchema(name, attrs...)
	if err != nil {
		return nil, err
	}
	fds, err := fd.NewSet(schema)
	if err != nil {
		return nil, err
	}
	r := &Relation{inst: relation.NewInstance(schema), fds: fds}
	db.rels[name] = r
	db.order = append(db.order, name)
	return r, nil
}

// AddInstance registers an existing instance (with no dependencies
// yet) under its schema name.
func (db *DB) AddInstance(inst *Instance) (*Relation, error) {
	name := inst.Schema().Name()
	if _, dup := db.rels[name]; dup {
		return nil, fmt.Errorf("prefcqa: relation %q already exists", name)
	}
	fds, err := fd.NewSet(inst.Schema())
	if err != nil {
		return nil, err
	}
	r := &Relation{inst: inst, fds: fds}
	db.rels[name] = r
	db.order = append(db.order, name)
	return r, nil
}

// Relation returns a previously created relation.
func (db *DB) Relation(name string) (*Relation, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// Relations lists the relation names in creation order.
func (db *DB) Relations() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.inst.Schema() }

// Instance returns the relation's (possibly inconsistent) instance.
func (r *Relation) Instance() *Instance { return r.inst }

// Insert adds a row from native Go values (string → name, integer
// types → int) and returns its tuple ID. Duplicate inserts return
// the existing ID (set semantics).
func (r *Relation) Insert(vals ...any) (TupleID, error) {
	id, err := r.inst.InsertValues(vals...)
	if err == nil {
		r.built = nil
	}
	return id, err
}

// MustInsert is Insert that panics on error, for fixtures.
func (r *Relation) MustInsert(vals ...any) TupleID {
	id, err := r.Insert(vals...)
	if err != nil {
		panic(err)
	}
	return id
}

// AddFD declares a functional dependency, e.g. "Dept -> Name, Salary".
func (r *Relation) AddFD(spec string) error {
	f, err := fd.Parse(r.inst.Schema(), spec)
	if err != nil {
		return err
	}
	if err := r.fds.Add(f); err != nil {
		return err
	}
	r.built = nil
	return nil
}

// FDs renders the declared dependencies.
func (r *Relation) FDs() string { return r.fds.String() }

// Prefer records that tuple x should win its conflict against tuple
// y (x ≻ y). Following Definition 2, pairs of non-conflicting tuples
// are accepted and ignored; contradictory or cyclic preferences are
// reported when the priority is built.
func (r *Relation) Prefer(x, y TupleID) error {
	if x < 0 || y < 0 || x >= r.inst.Len() || y >= r.inst.Len() {
		return fmt.Errorf("prefcqa: preference on unknown tuple IDs (%d, %d)", x, y)
	}
	r.prefs = append(r.prefs, [2]TupleID{x, y})
	r.built = nil
	return nil
}

// PreferByRank derives preferences from a rank function (smaller rank
// = more trusted, e.g. source reliability or recency): every conflict
// between tuples of different ranks is oriented toward the smaller
// rank. Rank-derived preferences are recorded alongside any explicit
// Prefer pairs; a contradiction between the two surfaces as an error
// on the next query or repair operation.
func (r *Relation) PreferByRank(rank func(TupleID) int) error {
	built, err := r.build()
	if err != nil {
		return err
	}
	g := built.Pri.Graph()
	for _, e := range g.Edges() {
		ra, rb := rank(e.A), rank(e.B)
		switch {
		case ra < rb:
			r.prefs = append(r.prefs, [2]TupleID{e.A, e.B})
		case rb < ra:
			r.prefs = append(r.prefs, [2]TupleID{e.B, e.A})
		}
	}
	r.built = nil
	return nil
}

// build (re)constructs the conflict graph and priority. The lock
// makes concurrent queries against an already-populated DB safe; it
// does not protect against concurrent mutation.
func (r *Relation) build() (*cqa.Relation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.built != nil {
		return r.built, nil
	}
	rel, err := cqa.NewRelation(r.inst, r.fds)
	if err != nil {
		return nil, err
	}
	pri, err := priority.FromRelation(rel.Pri.Graph(), r.prefs)
	if err != nil {
		return nil, err
	}
	rel.Pri = pri
	r.built = rel
	return rel, nil
}

// Graph returns the relation's conflict graph (built on demand).
func (r *Relation) Graph() (*conflict.Graph, error) {
	built, err := r.build()
	if err != nil {
		return nil, err
	}
	return built.Pri.Graph(), nil
}

// Conflicts returns the number of conflicting tuple pairs.
func (r *Relation) Conflicts() (int, error) {
	g, err := r.Graph()
	if err != nil {
		return 0, err
	}
	return g.NumEdges(), nil
}

// Consistent reports whether the relation satisfies its dependencies.
func (r *Relation) Consistent() (bool, error) {
	n, err := r.Conflicts()
	return n == 0, err
}

// input assembles the cqa.Input across all relations.
func (db *DB) input() (cqa.Input, error) {
	rels := make([]*cqa.Relation, 0, len(db.order))
	for _, name := range db.order {
		built, err := db.rels[name].build()
		if err != nil {
			return cqa.Input{}, fmt.Errorf("prefcqa: relation %s: %w", name, err)
		}
		rels = append(rels, built)
	}
	in, err := cqa.NewInput(rels...)
	if err != nil {
		return cqa.Input{}, err
	}
	return in.WithEngine(db.engine), nil
}

// Query evaluates a closed first-order query under the family's
// preferred-repair semantics and returns true, false or undetermined.
func (db *DB) Query(f Family, src string) (Answer, error) {
	q, err := query.Parse(src)
	if err != nil {
		return 0, err
	}
	in, err := db.input()
	if err != nil {
		return 0, err
	}
	return cqa.Evaluate(f, in, q)
}

// Certain reports whether true is the f-consistent answer to the
// closed query.
func (db *DB) Certain(f Family, src string) (bool, error) {
	a, err := db.Query(f, src)
	if err != nil {
		return false, err
	}
	return a == True, nil
}

// Possible reports whether the closed query holds in at least one
// preferred repair of the family (brave semantics).
func (db *DB) Possible(f Family, src string) (bool, error) {
	a, err := db.Query(f, src)
	if err != nil {
		return false, err
	}
	return a != False, nil
}

// QueryOpen evaluates an open query (free variables allowed) and
// returns its certain answers: the bindings under which the query
// holds in every preferred repair.
func (db *DB) QueryOpen(f Family, src string) ([]Binding, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	in, err := db.input()
	if err != nil {
		return nil, err
	}
	return cqa.FreeAnswers(f, in, q)
}

// Repairs materializes the family's preferred repairs of one relation
// as instances. Use CountRepairs first — the result can be
// exponential.
func (db *DB) Repairs(f Family, rel string) ([]*Instance, error) {
	r, ok := db.rels[rel]
	if !ok {
		return nil, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return nil, err
	}
	var out []*Instance
	db.engine.Enumerate(f, built.Pri, func(s *bitset.Set) bool { //nolint:errcheck // never stops
		out = append(out, r.inst.Subset(s))
		return true
	})
	return out, nil
}

// CountRepairs returns the number of preferred repairs of a relation.
func (db *DB) CountRepairs(f Family, rel string) (int64, error) {
	r, ok := db.rels[rel]
	if !ok {
		return 0, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return 0, err
	}
	return db.engine.Count(f, built.Pri)
}

// IsPreferredRepair checks whether the given tuple subset of a
// relation is a preferred repair of the family (the repair-checking
// problem of §4.1).
func (db *DB) IsPreferredRepair(f Family, rel string, ids []TupleID) (bool, error) {
	r, ok := db.rels[rel]
	if !ok {
		return false, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return false, err
	}
	return core.Check(f, built.Pri, bitset.FromSlice(ids)), nil
}

// Clean runs Algorithm 1 on the relation: winnow-driven cleaning
// under the recorded preferences, deterministic choice order. The
// result is always a single repair; with total preferences it is the
// unique one (Proposition 1).
func (db *DB) Clean(rel string) (*Instance, error) {
	r, ok := db.rels[rel]
	if !ok {
		return nil, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return nil, err
	}
	return r.inst.Subset(clean.Deterministic(built.Pri)), nil
}

// CleanNaive runs the naive cleaning baseline the paper argues
// against (§1, §5 [14]): conflicts without a recorded preference drop
// BOTH tuples. The result is consistent but in general not maximal —
// disjunctive information is lost. Provided for comparison with
// Clean and with preferred consistent query answering.
func (db *DB) CleanNaive(rel string) (*Instance, error) {
	r, ok := db.rels[rel]
	if !ok {
		return nil, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return nil, err
	}
	return r.inst.Subset(clean.Naive(built.Pri)), nil
}

// CheckAxioms probes properties P1-P4 for the family on the
// relation's current priority.
func (db *DB) CheckAxioms(f Family, rel string) (AxiomReport, error) {
	r, ok := db.rels[rel]
	if !ok {
		return AxiomReport{}, fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	built, err := r.build()
	if err != nil {
		return AxiomReport{}, err
	}
	return axioms.Check(axioms.FromCore(f), built.Pri, axioms.Options{}), nil
}

// ConflictGraphDOT renders the relation's conflict graph in Graphviz
// format.
func (db *DB) ConflictGraphDOT(rel string) (string, error) {
	r, ok := db.rels[rel]
	if !ok {
		return "", fmt.Errorf("prefcqa: unknown relation %q", rel)
	}
	g, err := r.Graph()
	if err != nil {
		return "", err
	}
	return g.DOT(), nil
}
