// Integration simulates the paper's motivating scenario at a larger
// scale: several autonomous inventory feeds disagree about product
// prices and stock; feeds have different reliabilities and ages.
// Preferences derived from the feed ranking drive consistent query
// answering without deleting any data.
package main

import (
	"fmt"
	"log"

	"prefcqa"
)

// feed is one autonomous source: a rank (0 = most trusted) and rows
// (sku, warehouse, price, stock).
type feed struct {
	name string
	rank int
	rows [][4]any
}

func main() {
	feeds := []feed{
		{"erp", 0, [][4]any{
			{"sku-1", "north", 100, 5},
			{"sku-2", "north", 250, 0},
			{"sku-3", "south", 40, 17},
		}},
		{"scanner", 1, [][4]any{
			{"sku-1", "north", 100, 7}, // disagrees with erp on stock
			{"sku-2", "north", 200, 3}, // disagrees on price and stock
			{"sku-4", "south", 75, 2},
		}},
		{"partner", 2, [][4]any{
			{"sku-1", "south", 110, 1}, // moves sku-1 to another warehouse
			{"sku-3", "south", 40, 17}, // agrees with erp
			{"sku-4", "south", 80, 2},  // disagrees with scanner on price
		}},
	}

	db := prefcqa.New()
	inv, err := db.CreateRelation("Inv",
		prefcqa.NameAttr("SKU"), prefcqa.NameAttr("Warehouse"),
		prefcqa.IntAttr("Price"), prefcqa.IntAttr("Stock"))
	if err != nil {
		log.Fatal(err)
	}
	// A SKU has one row: warehouse, price and stock are determined by
	// the SKU.
	check(inv.AddFD("SKU -> Warehouse, Price, Stock"))

	rank := map[prefcqa.TupleID]int{}
	for _, f := range feeds {
		for _, row := range f.rows {
			id, err := inv.Insert(row[0], row[1], row[2], row[3])
			check(err)
			if old, seen := rank[id]; !seen || f.rank < old {
				rank[id] = f.rank
			}
		}
	}
	check(inv.PreferByRank(func(id prefcqa.TupleID) int { return rank[id] }))

	conflicts, err := inv.Conflicts()
	check(err)
	all, err := db.CountRepairs(prefcqa.Rep, "Inv")
	check(err)
	preferred, err := db.CountRepairs(prefcqa.Global, "Inv")
	check(err)
	fmt.Printf("integrated %d rows from %d feeds: %d conflicts\n", inv.Instance().Len(), len(feeds), conflicts)
	fmt.Printf("repairs: %d total, %d preferred (G-Rep)\n\n", all, preferred)

	queries := []struct{ label, src string }{
		{"sku-1 certainly in north?", "EXISTS p, s . Inv('sku-1', 'north', p, s)"},
		{"sku-2 price certainly above 150?", "EXISTS w, p, s . Inv('sku-2', w, p, s) AND p > 150"},
		{"sku-3 stock is certainly 17?", "EXISTS w, p . Inv('sku-3', w, p, 17)"},
		{"some sku certainly out of stock?", "EXISTS k, w, p . Inv(k, w, p, 0)"},
	}
	fmt.Printf("%-36s %-14s %s\n", "query", "all repairs", "preferred (G-Rep)")
	for _, q := range queries {
		plain, err := db.Query(prefcqa.Rep, q.src)
		check(err)
		pref, err := db.Query(prefcqa.Global, q.src)
		check(err)
		fmt.Printf("%-36s %-14s %s\n", q.label, plain, pref)
	}

	// Certain prices per SKU over the preferred repairs.
	fmt.Println("\ncertain (sku, price) pairs over G-Rep:")
	bindings, err := db.QueryOpen(prefcqa.Global, "EXISTS w, s . Inv(k, w, p, s)")
	check(err)
	for _, b := range bindings {
		fmt.Printf("  sku=%v price=%v\n", b["k"], b["p"])
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
