// Quickstart walks through the paper's running example (Examples
// 1-3): integrating three conflicting sources into the Mgr relation,
// inspecting conflicts and repairs, and seeing how preferences turn
// an undetermined consistent answer into a definite one.
package main

import (
	"fmt"
	"log"

	"prefcqa"
)

func main() {
	db := prefcqa.New()
	mgr, err := db.CreateRelation("Mgr",
		prefcqa.NameAttr("Name"), prefcqa.NameAttr("Dept"),
		prefcqa.IntAttr("Salary"), prefcqa.IntAttr("Reports"))
	if err != nil {
		log.Fatal(err)
	}

	// Example 1: the union of three consistent sources.
	mary := mgr.MustInsert("Mary", "R&D", 40, 3)  // from s1
	john := mgr.MustInsert("John", "R&D", 10, 2)  // from s2
	maryIT := mgr.MustInsert("Mary", "IT", 20, 1) // from s3
	johnPR := mgr.MustInsert("John", "PR", 30, 4) // from s3

	// fd1: a department has one manager; fd2: a manager runs one
	// department.
	check(mgr.AddFD("Dept -> Name, Salary, Reports"))
	check(mgr.AddFD("Name -> Dept, Salary, Reports"))

	conflicts, err := mgr.Conflicts()
	check(err)
	repairs, err := db.CountRepairs(prefcqa.Rep, "Mgr")
	check(err)
	fmt.Printf("integrated instance: %d tuples, %d conflicts, %d repairs\n\n",
		mgr.Instance().Len(), conflicts, repairs)

	// Q1: does John earn more than Mary? True in the raw instance —
	// but misleading: the instance may correspond to no real state.
	q1 := `EXISTS x1, y1, z1, x2, y2, z2 .
	         Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 < y2`
	a, err := db.Query(prefcqa.Rep, q1)
	check(err)
	fmt.Printf("Q1 (John out-earns Mary), consistent answer over all repairs: %s\n", a)

	// Q2: Mary earns more AND writes fewer reports.
	q2 := `EXISTS x1, y1, z1, x2, y2, z2 .
	         Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 > y2 AND z1 < z2`
	a, err = db.Query(prefcqa.Rep, q2)
	check(err)
	fmt.Printf("Q2 (Mary earns more, reports less), over all repairs:     %s\n\n", a)

	// Example 3: source s3 is less reliable than s1 and s2 (relative
	// reliability of s1 vs s2 unknown). Record the preferences.
	check(mgr.Prefer(mary, maryIT))
	check(mgr.Prefer(john, johnPR))

	for _, f := range []prefcqa.Family{prefcqa.Local, prefcqa.SemiGlobal, prefcqa.Global, prefcqa.Common} {
		n, err := db.CountRepairs(f, "Mgr")
		check(err)
		a, err := db.Query(f, q2)
		check(err)
		fmt.Printf("Q2 over %-6v (%d preferred repairs): %s\n", f, n, a)
	}

	// Open query: which names are certainly managers, over G-Rep?
	fmt.Println()
	bindings, err := db.QueryOpen(prefcqa.Global, "EXISTS d, s, r . Mgr(n, d, s, r)")
	check(err)
	fmt.Println("certainly managed by (over G-Rep):")
	for _, b := range bindings {
		fmt.Printf("  %s\n", b)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
