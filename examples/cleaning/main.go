// Cleaning contrasts three ways of dealing with the same inconsistent
// relation when the user's preferences resolve only SOME conflicts
// (the situation of Example 3):
//
//  1. naive cleaning — drop both sides of unresolved conflicts
//     (consistent, but loses disjunctive information);
//  2. Algorithm 1 — winnow-driven cleaning (always returns a repair,
//     but must commit to one resolution of unresolved conflicts);
//  3. preferred consistent query answering — keep the database as is
//     and quantify over all preferred repairs.
package main

import (
	"fmt"
	"log"

	"prefcqa"
)

func main() {
	db := prefcqa.New()
	emp, err := db.CreateRelation("Emp",
		prefcqa.NameAttr("Name"), prefcqa.NameAttr("Team"), prefcqa.IntAttr("Grade"))
	if err != nil {
		log.Fatal(err)
	}
	// Two conflict clusters on the key Name:
	//  - Ada appears with three different grades; HR says the newest
	//    record (grade 7) wins.
	//  - Bob appears in two teams; nobody knows which is right.
	ada5 := emp.MustInsert("Ada", "db", 5)
	ada6 := emp.MustInsert("Ada", "db", 6)
	ada7 := emp.MustInsert("Ada", "db", 7)
	emp.MustInsert("Bob", "db", 4)
	emp.MustInsert("Bob", "web", 4)
	emp.MustInsert("Eve", "web", 9) // clean
	check(emp.AddFD("Name -> Team, Grade"))
	check(emp.Prefer(ada7, ada5))
	check(emp.Prefer(ada7, ada6))

	fmt.Println("original instance:")
	fmt.Println(" ", emp.Instance())

	naive, err := db.CleanNaive("Emp")
	check(err)
	fmt.Println("\n(1) naive cleaning (unresolved conflicts drop both sides):")
	fmt.Println(" ", naive)
	fmt.Println("    -> Bob vanished entirely: information loss")

	cleaned, err := db.Clean("Emp")
	check(err)
	fmt.Println("\n(2) Algorithm 1 (always a repair; commits on Bob arbitrarily):")
	fmt.Println(" ", cleaned)

	fmt.Println("\n(3) preferred consistent query answering (no data deleted):")
	queries := []struct{ label, src string }{
		{"Ada's grade is 7", "Emp('Ada', 'db', 7)"},
		{"Bob is on some team", "EXISTS t, g . Emp('Bob', t, g)"},
		{"Bob is on the web team", "EXISTS g . Emp('Bob', 'web', g)"},
		{"Eve is on the web team", "EXISTS g . Emp('Eve', 'web', g)"},
	}
	for _, q := range queries {
		a, err := db.Query(prefcqa.Global, q.src)
		check(err)
		fmt.Printf("    %-24s => %s\n", q.label, a)
	}
	fmt.Println(`
    "Bob is on some team" stays certainly true — exactly the
    disjunctive information both cleaners destroyed or fixed
    arbitrarily, while "which team" is honestly undetermined.`)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
