// Axioms audits the paper's §3 story on a single database: the
// containment chain C-Rep ⊆ G-Rep ⊆ S-Rep ⊆ L-Rep ⊆ Rep and the
// P1-P4 properties of each family, probed on the reconstructed
// Example 9 scenario (mutual conflicts, partial priority).
package main

import (
	"fmt"
	"log"

	"prefcqa"
)

func main() {
	db := prefcqa.New()
	r, err := db.CreateRelation("R",
		prefcqa.IntAttr("A"), prefcqa.IntAttr("B"),
		prefcqa.IntAttr("C"), prefcqa.IntAttr("D"), prefcqa.IntAttr("E"))
	if err != nil {
		log.Fatal(err)
	}
	// K_{2,3} mutual-conflict component (the §3.3 shape): even tuples
	// form one repair side, odd tuples the other.
	var ids []prefcqa.TupleID
	for i := 0; i < 5; i++ {
		side := i%2 + 1
		ids = append(ids, r.MustInsert(1, side, 1, side, i))
	}
	check(r.AddFD("A -> B"))
	check(r.AddFD("C -> D"))
	// Partial chain preference t0 > t1 > t2 > t3 > t4.
	for i := 0; i+1 < len(ids); i++ {
		check(r.Prefer(ids[i], ids[i+1]))
	}

	fmt.Println("family   size  members")
	families := []prefcqa.Family{prefcqa.Rep, prefcqa.Local, prefcqa.SemiGlobal, prefcqa.Global, prefcqa.Common}
	for _, f := range families {
		reps, err := db.Repairs(f, "R")
		check(err)
		fmt.Printf("%-8v %-5d", f, len(reps))
		for _, inst := range reps {
			fmt.Printf(" %v", tupleIDs(r, inst))
		}
		fmt.Println()
	}

	fmt.Println("\naxiom probe (P1 non-emptiness, P2 monotonicity, P3 non-discrimination, P4 categoricity):")
	fmt.Println("family   P1       P2       P3       P4")
	for _, f := range families[1:] {
		rep, err := db.CheckAxioms(f, "R")
		check(err)
		fmt.Printf("%-8v %-8s %-8s %-8s %-8s\n", f, rep.P1, rep.P2, rep.P3, rep.P4)
	}
	fmt.Println(`
S-Rep keeps both sides (the priority alone cannot separate them
without global reasoning); G-Rep and C-Rep use the partial priority
aggressively and keep only the even side — the paper's Figure 4.`)
}

// tupleIDs renders a repair as the E-column ids for compactness.
func tupleIDs(r *prefcqa.Relation, inst *prefcqa.Instance) string {
	out := "{"
	first := true
	idx, _ := inst.Schema().Index("E")
	inst.Range(func(_ prefcqa.TupleID, t prefcqa.Tuple) bool {
		if !first {
			out += ","
		}
		first = false
		out += fmt.Sprint(t[idx].AsInt())
		return true
	})
	return out + "}"
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
