package prefcqa

import (
	"errors"
	"path/filepath"
	"testing"

	"prefcqa/internal/wal"
)

// seedPrimary builds a durable primary with a small conflicted
// relation and returns it plus its full record history.
func seedPrimary(t *testing.T, dir string) (*DB, []wal.Record) {
	t.Helper()
	db, err := Open(dir, WithSyncPolicy(SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.CreateRelation("R", IntAttr("K"), IntAttr("V"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddFD("K -> V"); err != nil {
		t.Fatal(err)
	}
	a := r.MustInsert(1, 0)
	b := r.MustInsert(1, 1)
	if err := r.Prefer(a, b); err != nil {
		t.Fatal(err)
	}
	recs, err := db.ReplReadFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return db, recs
}

func TestReplApplyStrictSequenceAndFencing(t *testing.T) {
	base := t.TempDir()
	primary, recs := seedPrimary(t, filepath.Join(base, "p"))
	defer primary.Close()

	follower, err := Open(filepath.Join(base, "f"), WithSyncPolicy(SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	follower.SetReadOnly(true)

	// A public mutation on a follower is refused outright.
	if _, err := follower.CreateRelation("S", IntAttr("X")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("CreateRelation on read-only replica: err = %v, want ErrReadOnly", err)
	}

	// Out-of-order replication is refused before anything applies.
	if err := follower.ReplApply(recs[1]); err == nil {
		t.Fatal("ReplApply skipping seq 1 did not fail")
	}
	for _, rec := range recs {
		if err := follower.ReplApply(rec); err != nil {
			t.Fatalf("ReplApply(seq %d): %v", rec.Seq, err)
		}
	}
	if got, want := follower.WriteVersion(), primary.WriteVersion(); got != want {
		t.Fatalf("follower version = %d, primary = %d", got, want)
	}
	// Replaying an already-applied record is refused too.
	if err := follower.ReplApply(recs[len(recs)-1]); err == nil {
		t.Fatal("ReplApply of an already-applied record did not fail")
	}

	// The replicated state answers exactly like the primary.
	for _, f := range []Family{Rep, Local, SemiGlobal, Global, Common} {
		p, err := primary.Query(f, "R(1, 0)")
		if err != nil {
			t.Fatal(err)
		}
		g, err := follower.Query(f, "R(1, 0)")
		if err != nil {
			t.Fatal(err)
		}
		if p != g {
			t.Fatalf("family %v: follower answered %v, primary %v", f, g, p)
		}
	}

	// A record from an older epoch is fenced.
	stale := wal.Record{Seq: follower.WriteVersion() + 1, Epoch: 0, Op: wal.OpInsert, Rel: "R", Rows: [][]string{{"2", "0"}}}
	if _, err := follower.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := follower.ReplApply(stale); err == nil {
		t.Fatal("ReplApply with epoch behind the promoted fence did not fail")
	}
}

func TestReplBootstrapPromoteAndDurableFence(t *testing.T) {
	base := t.TempDir()
	primary, _ := seedPrimary(t, filepath.Join(base, "p"))
	defer primary.Close()
	ckpt, err := primary.CaptureCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	fdir := filepath.Join(base, "f")
	follower, err := Open(fdir, WithSyncPolicy(SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly(true)
	if err := follower.ReplBootstrap(ckpt); err != nil {
		t.Fatal(err)
	}
	if got, want := follower.WriteVersion(), primary.WriteVersion(); got != want {
		t.Fatalf("bootstrapped version = %d, want %d", got, want)
	}
	if n, err := follower.CountRepairs(Global, "R"); err != nil || n != 1 {
		t.Fatalf("CountRepairs on bootstrapped replica = %d, %v; want 1", n, err)
	}
	// Bootstrap is strictly for empty replicas.
	if err := follower.ReplBootstrap(ckpt); err == nil {
		t.Fatal("ReplBootstrap on a non-empty replica did not fail")
	}

	// Promotion: writes resume at the exact next sequence, epoch 2.
	seqBefore := follower.WriteVersion()
	epoch, err := follower.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	r, ok := follower.Relation("R")
	if !ok {
		t.Fatal("relation R missing after bootstrap")
	}
	r.MustInsert(2, 0)
	if got := follower.WriteVersion(); got != seqBefore+1 {
		t.Fatalf("version after first post-promotion write = %d, want %d", got, seqBefore+1)
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// The fence is durable: a restart stays at epoch 2 and still
	// refuses the old lineage.
	re, err := Open(fdir, WithSyncPolicy(SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Epoch(); got != 2 {
		t.Fatalf("epoch after restart = %d, want 2", got)
	}
	stale := wal.Record{Seq: re.WriteVersion() + 1, Epoch: 1, Op: wal.OpInsert, Rel: "R", Rows: [][]string{{"3", "0"}}}
	if err := re.ReplApply(stale); err == nil {
		t.Fatal("restarted promoted replica accepted a record from the fenced epoch")
	}
	if n, err := re.CountRepairs(Global, "R"); err != nil || n != 1 {
		t.Fatalf("CountRepairs after restart = %d, %v; want 1", n, err)
	}
}

// TestReplApplyForksPublishedVersions: replication applies while a
// snapshot is pinned must not mutate the pinned version in place — the
// same immutability contract local writes honor.
func TestReplApplyForksPublishedVersions(t *testing.T) {
	base := t.TempDir()
	primary, recs := seedPrimary(t, filepath.Join(base, "p"))
	defer primary.Close()

	follower := New() // in-memory replica: applies without a local log
	follower.SetReadOnly(true)
	// Apply the schema + first insert, pin a snapshot, then stream the
	// rest and verify the pinned view never moves.
	for _, rec := range recs[:3] {
		if err := follower.ReplApply(rec); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := follower.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	instBefore, ok := snap.Instance("R")
	if !ok {
		t.Fatal("pinned snapshot lost relation R")
	}
	lenBefore := instBefore.Len()
	for _, rec := range recs[3:] {
		if err := follower.ReplApply(rec); err != nil {
			t.Fatal(err)
		}
	}
	instAfter, _ := snap.Instance("R")
	if instAfter.Len() != lenBefore {
		t.Fatalf("pinned snapshot changed under replication: %d tuples, was %d", instAfter.Len(), lenBefore)
	}
	fresh, err := follower.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if inst, _ := fresh.Instance("R"); inst.Len() <= lenBefore {
		t.Fatalf("fresh snapshot has %d tuples, want more than the pinned %d", inst.Len(), lenBefore)
	}
}
