// Command prefclean cleans an inconsistent CSV relation with
// Algorithm 1 of the paper: winnow-driven conflict resolution under
// the given preferences. The cleaned relation (always a repair) is
// written as CSV to stdout. With total preferences the output is the
// unique preferred repair (Proposition 1); with partial preferences
// it is one member of C-Rep.
//
// Usage:
//
//	prefclean -data mgr.csv -rel Mgr -fd 'Dept -> Name,Salary,Reports' \
//	          -prefs prefs.txt > cleaned.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"prefcqa"
	"prefcqa/internal/cliutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prefclean:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		data  = flag.String("data", "", "CSV file with a typed header (required)")
		rel   = flag.String("rel", "R", "relation name")
		prefs = flag.String("prefs", "", "preference file (tuple > tuple per line)")
		fds   cliutil.StringList
	)
	flag.Var(&fds, "fd", "functional dependency 'X -> Y' (repeatable)")
	flag.Parse()

	if *data == "" {
		flag.Usage()
		return fmt.Errorf("-data is required")
	}
	db, r, err := cliutil.LoadDB(*data, *rel, fds, *prefs)
	if err != nil {
		return err
	}
	cleaned, err := db.Clean(*rel)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "prefclean: kept %d of %d tuples\n", cleaned.Len(), r.Instance().Len())
	return prefcqa.WriteCSV(os.Stdout, cleaned)
}
