// Command prefclean cleans an inconsistent CSV relation with
// Algorithm 1 of the paper: winnow-driven conflict resolution under
// the given preferences. The cleaned relation (always a repair) is
// written as CSV to stdout. With total preferences the output is the
// unique preferred repair (Proposition 1); with partial preferences
// it is one member of C-Rep.
//
// Usage:
//
//	prefclean -data mgr.csv -rel Mgr -fd 'Dept -> Name,Salary,Reports' \
//	          -prefs prefs.txt > cleaned.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"prefcqa"
	"prefcqa/internal/cliutil"
)

func main() { cliutil.Main("prefclean", run) }

func run() error {
	data := cliutil.RegisterDataFlags()
	flag.Parse()

	db, r, err := data.Load()
	if err != nil {
		return err
	}
	cleaned, err := db.Clean(data.Rel)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "prefclean: kept %d of %d tuples\n", cleaned.Len(), r.Instance().Len())
	return prefcqa.WriteCSV(os.Stdout, cleaned)
}
