// Command prefserve serves preference-driven consistent query
// answering over HTTP/JSON: a multi-tenant registry of named
// databases with snapshot-isolated reads (query, open query, repair
// counting and streaming enumeration, plan explanation) running
// concurrently with incremental writes (insert, delete, prefer, FD
// declaration), under admission control and per-request deadlines.
// The wire protocol is defined in the prefcqa/client package; see
// docs/ARCHITECTURE.md ("Serving layer") for the model.
//
// Usage:
//
//	prefserve -addr :7171
//	prefserve -addr :7171 -data-dir /var/lib/prefserve -fsync always
//	prefserve -addr :7171 -db mydb \
//	          -data mgr.csv -rel Mgr -fd 'Dept -> Name,Salary,Reports' -prefs prefs.txt
//
// With -data, the CSV relation (plus -fd / -prefs) is preloaded into
// the database named by -db before serving. Without it the server
// starts empty; create databases and relations over the API.
//
// With -data-dir every database is durable: mutations are written to a
// per-database write-ahead log under <data-dir>/<name> before they are
// acknowledged, and a restart recovers every database found there
// (latest checkpoint plus log tail) before the listener opens. -fsync
// picks the sync policy: "always" fsyncs before acking each write,
// "group" acks immediately and fsyncs on a short timer, "never" leaves
// syncing to the OS (data still survives a process crash, not a power
// failure).
//
// With -follow the server runs as a replication follower of another
// durable prefserve: it bootstraps every database from the primary's
// checkpoint image, tails its write-ahead log over HTTP and serves
// reads snapshot-isolated at the replicated watermark; writes are
// refused with 421 naming the primary. POST /v1/promote (or
// -auto-promote after silence from the primary) turns the follower
// into a primary at the exact sequence where the old one stopped.
//
//	curl -s localhost:7171/v1/query -d '{"db":"mydb","family":"global",
//	      "query":"EXISTS d,s,r . Mgr('\''Mary'\'', d, s, r)"}'
//
// The server drains in-flight requests and exits cleanly on SIGINT /
// SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prefcqa"
	"prefcqa/internal/cliutil"
	"prefcqa/internal/server"
)

func main() { cliutil.Main("prefserve", run) }

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func run() error {
	var (
		addr        = flag.String("addr", ":7171", "listen address")
		dbName      = flag.String("db", "default", "name of the preloaded database (with -data)")
		maxInflight = flag.Int("max-inflight", 64, "admission control: maximum requests in flight")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
		maxRepairs  = flag.Int("max-repairs", 1024, "default cap on streamed repair enumerations")
		dataDir     = flag.String("data-dir", "", "root directory for durable databases (empty: in-memory only)")
		fsync       = flag.String("fsync", "always", "WAL sync policy with -data-dir: always, group, or never")
		follow      = flag.String("follow", "", "run as a replication follower of the primary at this base URL")
		autoPromote = flag.Duration("auto-promote", 0, "with -follow: promote after this long without primary contact (0: manual only)")
		data        = cliutil.RegisterDataFlags()
	)
	flag.Parse()

	if *follow == "" && *autoPromote > 0 {
		return fmt.Errorf("-auto-promote requires -follow")
	}
	if *follow != "" && data.Data != "" {
		return fmt.Errorf("-data cannot preload a follower; load through the primary instead")
	}

	policy, err := prefcqa.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}
	srv := server.New(server.Options{
		MaxInflight:    *maxInflight,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxRepairs:     *maxRepairs,
		DataDir:        *dataDir,
		DBOptions:      []prefcqa.Option{prefcqa.WithSyncPolicy(policy)},
		FollowURL:      *follow,
		AutoPromote:    *autoPromote,
	})
	recovered, err := srv.RecoverDBs()
	if err != nil {
		return err
	}
	for _, name := range recovered {
		fmt.Fprintf(os.Stderr, "prefserve: recovered database %q from %s\n",
			name, *dataDir)
	}
	if err := srv.StartReplication(); err != nil {
		return err
	}
	if *follow != "" {
		fmt.Fprintf(os.Stderr, "prefserve: following primary at %s (read-only until promoted)\n", *follow)
	}
	if data.Data != "" {
		// A recovered database already holds its data — preloading
		// again would double-insert, so -data only seeds a database
		// that does not exist yet.
		if contains(recovered, *dbName) {
			fmt.Fprintf(os.Stderr, "prefserve: database %q recovered from log; skipping -data preload\n", *dbName)
		} else {
			db, err := srv.CreateDB(*dbName)
			if err != nil {
				return err
			}
			rel, err := cliutil.LoadInto(db, data.Data, data.Rel, data.FDs, data.Prefs)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "prefserve: loaded %s.%s (%d tuples)\n",
				*dbName, data.Rel, rel.Instance().Len())
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "prefserve: listening on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "prefserve: shutting down (draining in-flight requests)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
