// Command prefbench regenerates the paper's figures and tables as
// text output (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	prefbench            # run everything, full sizes
//	prefbench -quick     # small sizes (seconds)
//	prefbench -exp fig5  # one experiment: fig1 fig2 fig3 fig4 props
//	                     # clean fig5check fig5cqa denial pruning
//	prefbench -json      # machine-readable benchmark suite (ns/op,
//	                     # B/op, allocs/op, repairs/sec) on stdout —
//	                     # the source of the checked-in BENCH_*.json
//	                     # trajectory snapshots
//	prefbench -json -workloads verify_query
//	                     # substring filter: run only matching
//	                     # workloads (comma-separated substrings),
//	                     # for profiling one workload in isolation
//
// -cpuprofile and -memprofile write pprof profiles covering whatever
// ran (experiments or the JSON suite), for chasing hotspots in the
// vectorized executors: `prefbench -quick -json -cpuprofile cpu.out`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"prefcqa/internal/bench"
	"prefcqa/internal/cliutil"
)

var experiments = []struct {
	name string
	fn   func(bench.Options) []*bench.Table
}{
	{"fig1", bench.Fig1},
	{"fig2", bench.Fig2},
	{"fig3", bench.Fig3},
	{"fig4", bench.Fig4},
	{"props", bench.Props},
	{"clean", bench.CleanExp},
	{"fig5check", bench.Fig5RepairCheck},
	{"fig5cqa", bench.Fig5CQA},
	{"denial", bench.DenialExp},
	{"pruning", bench.AblationPruning},
}

func main() { cliutil.Main("prefbench", run) }

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment to run (or 'all')")
		quick      = flag.Bool("quick", false, "small input sizes")
		jsonMode   = flag.Bool("json", false, "emit machine-readable benchmark results as JSON")
		workloads  = flag.String("workloads", "", "with -json: only run workloads whose names contain one of these comma-separated substrings (e.g. verify_query,open_query)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prefbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prefbench: memprofile:", err)
			}
		}()
	}
	opts := bench.Options{Quick: *quick, Workloads: *workloads}
	if *jsonMode {
		return bench.JSON(opts).WriteJSON(os.Stdout)
	}
	ran := 0
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran++
		for _, tab := range e.fn(opts) {
			tab.Render(os.Stdout)
		}
	}
	if ran == 0 {
		avail := ""
		for _, e := range experiments {
			avail += " " + e.name
		}
		return fmt.Errorf("unknown experiment %q (available:%s)", *exp, avail)
	}
	return nil
}
