// Command prefrepairs inspects the preferred repairs of an
// inconsistent CSV relation: counts or lists them per family, checks
// a candidate repair, and renders the conflict graph.
//
// Usage:
//
//	prefrepairs -data mgr.csv -rel Mgr -fd 'Dept -> Name,Salary,Reports' \
//	            -prefs prefs.txt -family global -list
//	prefrepairs -data mgr.csv -rel Mgr -fd '...' -dot
package main

import (
	"flag"
	"fmt"

	"prefcqa"
	"prefcqa/internal/cliutil"
)

func main() { cliutil.Main("prefrepairs", run) }

func run() error {
	var (
		data    = cliutil.RegisterDataFlags()
		family  = cliutil.RegisterFamilyFlag()
		list    = flag.Bool("list", false, "list the preferred repairs (may be exponential)")
		max     = flag.Int("max", 64, "list at most this many repairs")
		dot     = flag.Bool("dot", false, "print the conflict graph in Graphviz format and exit")
		axioms  = flag.Bool("axioms", false, "probe properties P1-P4 for the family")
		explain = flag.Bool("explain", false, "explain every conflicting tuple's status")
	)
	flag.Parse()

	fam, err := prefcqa.ParseFamily(*family)
	if err != nil {
		return err
	}
	db, r, err := data.Load()
	if err != nil {
		return err
	}
	rel := &data.Rel
	if *dot {
		s, err := db.ConflictGraphDOT(*rel)
		if err != nil {
			return err
		}
		fmt.Print(s)
		return nil
	}
	conflicts, err := r.Conflicts()
	if err != nil {
		return err
	}
	all, err := db.CountRepairs(prefcqa.Rep, *rel)
	if err != nil {
		return err
	}
	preferred, err := db.CountRepairs(fam, *rel)
	if err != nil {
		return err
	}
	fmt.Printf("relation %s: %d tuples, %d conflicts\n", *rel, r.Instance().Len(), conflicts)
	fmt.Printf("repairs: %d total, %d in %v\n", all, preferred, fam)

	if *axioms {
		rep, err := db.CheckAxioms(fam, *rel)
		if err != nil {
			return err
		}
		fmt.Printf("axioms for %v: P1=%s P2=%s P3=%s P4=%s\n", fam, rep.P1, rep.P2, rep.P3, rep.P4)
	}
	if *explain {
		for id := 0; id < r.Instance().NumIDs(); id++ {
			if !r.Instance().Live(id) {
				continue
			}
			rep, err := db.ExplainTuple(fam, *rel, prefcqa.TupleID(id))
			if err != nil {
				return err
			}
			if len(rep.Conflicts) == 0 {
				continue
			}
			fmt.Println(rep)
		}
	}
	if *list {
		repairs, err := db.Repairs(fam, *rel)
		if err != nil {
			return err
		}
		for i, inst := range repairs {
			if i >= *max {
				fmt.Printf("... (%d more)\n", len(repairs)-*max)
				break
			}
			fmt.Printf("repair %d: %s\n", i+1, inst)
		}
	}
	return nil
}
