// Command prefq answers first-order queries over an inconsistent CSV
// relation under preferred-repair semantics.
//
// Usage:
//
//	prefq -data mgr.csv -rel Mgr \
//	      -fd 'Dept -> Name,Salary,Reports' -fd 'Name -> Dept,Salary,Reports' \
//	      -prefs prefs.txt -family global \
//	      -query "EXISTS d,s,r . Mgr('Mary', d, s, r)"
//
// The data file is CSV with a typed header (attr:name or attr:int).
// The preference file holds lines "tuple > tuple" with tuples as
// comma-separated values. Closed queries print true / false /
// undetermined; open queries (free variables) print their certain
// answers, one binding per line.
package main

import (
	"flag"
	"fmt"
	"strings"

	"prefcqa"
	"prefcqa/internal/cliutil"
)

func main() { cliutil.Main("prefq", run) }

func run() error {
	var (
		data    = cliutil.RegisterDataFlags()
		family  = cliutil.RegisterFamilyFlag()
		explain = flag.Bool("explain-plan", false, "print the physical query plan (access paths, join order, est/act rows)")
		queries cliutil.StringList
	)
	flag.Var(&queries, "query", "first-order query (repeatable)")
	flag.Parse()

	if len(queries) == 0 {
		flag.Usage()
		return fmt.Errorf("-data and at least one -query are required")
	}
	fam, err := prefcqa.ParseFamily(*family)
	if err != nil {
		return err
	}
	db, r, err := data.Load()
	if err != nil {
		return err
	}
	conflicts, err := r.Conflicts()
	if err != nil {
		return err
	}
	count, err := db.CountRepairs(fam, data.Rel)
	if err != nil {
		return err
	}
	fmt.Printf("relation %s: %d tuples, %d conflicts, %d %v repairs\n",
		data.Rel, r.Instance().Len(), conflicts, count, fam)

	for _, src := range queries {
		ans, err := db.Query(fam, src)
		if err == nil {
			fmt.Printf("%s\n  => %s\n", src, ans)
			if *explain {
				printPlan(db, src)
			}
			continue
		}
		// Retry as an open query.
		bindings, openErr := db.QueryOpen(fam, src)
		if openErr != nil {
			return err // report the original (closed) error
		}
		fmt.Printf("%s\n", src)
		if len(bindings) == 0 {
			fmt.Println("  => no certain answers")
		}
		for _, b := range bindings {
			fmt.Printf("  => %s\n", b)
		}
		if *explain {
			fmt.Println("  (no plan: -explain-plan covers closed queries only)")
		}
	}
	return nil
}

// printPlan renders the physical plan of one closed query, indented
// under its answer.
func printPlan(db *prefcqa.DB, src string) {
	rep, err := db.ExplainPlan(src)
	if err != nil {
		fmt.Printf("  (explain-plan: %v)\n", err)
		return
	}
	for _, line := range strings.Split(rep.String(), "\n") {
		fmt.Printf("  | %s\n", line)
	}
}
