module prefcqa

go 1.22
