package prefcqa

import (
	"strings"
	"testing"
)

func TestExplainTuple(t *testing.T) {
	db, mgr, ids := paperDB(t)
	mgr.Prefer(ids["mary"], ids["maryIT"]) //nolint:errcheck
	mgr.Prefer(ids["john"], ids["johnPR"]) //nolint:errcheck

	// maryIT is dominated by mary: rejected from every G-repair? The
	// preferred repairs are {mary, johnPR} and {john, maryIT} — so
	// maryIT is disputed (in the second one).
	rep, err := db.ExplainTuple(Global, "Mgr", ids["maryIT"])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status() != "disputed" {
		t.Fatalf("maryIT status = %q, want disputed\n%s", rep.Status(), rep)
	}
	if len(rep.Conflicts) != 1 || rep.Conflicts[0].With != ids["mary"] {
		t.Fatalf("maryIT conflicts = %+v", rep.Conflicts)
	}
	if len(rep.DominatedBy) != 1 || rep.DominatedBy[0] != ids["mary"] {
		t.Fatalf("maryIT dominatedBy = %v", rep.DominatedBy)
	}

	// mary conflicts john (unoriented) and dominates maryIT.
	rep, err = db.ExplainTuple(Global, "Mgr", ids["mary"])
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Conflicts) != 2 {
		t.Fatalf("mary conflicts = %+v", rep.Conflicts)
	}
	if len(rep.Dominates) != 1 || rep.Dominates[0] != ids["maryIT"] {
		t.Fatalf("mary dominates = %v", rep.Dominates)
	}
	if rep.Status() != "disputed" {
		t.Fatalf("mary status = %q", rep.Status())
	}
	if !strings.Contains(rep.String(), "conflicts with") {
		t.Fatalf("String = %q", rep.String())
	}
}

func TestExplainTupleClean(t *testing.T) {
	db := New()
	r, _ := db.CreateRelation("R", IntAttr("K"), IntAttr("V"))
	clean := r.MustInsert(1, 10)
	a := r.MustInsert(2, 20)
	b := r.MustInsert(2, 30)
	if err := r.AddFD("K -> V"); err != nil {
		t.Fatal(err)
	}
	rep, err := db.ExplainTuple(Rep, "R", clean)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status() != "clean" || !rep.InAll {
		t.Fatalf("clean tuple report: %+v", rep)
	}
	// With a total preference, the loser is rejected under G.
	if err := r.Prefer(a, b); err != nil {
		t.Fatal(err)
	}
	rep, err = db.ExplainTuple(Global, "R", b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status() != "rejected" {
		t.Fatalf("dominated tuple status = %q, want rejected", rep.Status())
	}
	rep, err = db.ExplainTuple(Global, "R", a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status() != "kept" {
		t.Fatalf("winner status = %q, want kept", rep.Status())
	}
}

func TestExplainTupleErrors(t *testing.T) {
	db, _, _ := paperDB(t)
	if _, err := db.ExplainTuple(Rep, "Nope", 0); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := db.ExplainTuple(Rep, "Mgr", 99); err == nil {
		t.Error("unknown tuple should fail")
	}
}
